// Command serve is the contest-as-a-service daemon. It runs in two modes:
//
// Node mode (default): a long-running HTTP server that accepts declarative
// scenario specs (internal/spec) as jobs, executes them on a bounded
// worker pool (internal/jobs), and exposes progress snapshots, final
// results with archcontest-obs-v1 metrics, and Chrome/Perfetto timelines.
// With -queue the accept queue is bounded and overload is shed with
// 429/503 + Retry-After; with -cache.serve the node also exports its
// result-cache blob store at /v1/blobs/ for the rest of a fleet.
//
// Coordinator mode (-coord, with -nodes): the cluster facade. Incoming
// specs are sharded across the node set with cache-aware rendezvous
// routing, saturated or dead nodes are routed around, and jobs whose node
// dies mid-run are retried on survivors — every accepted job ends in
// exactly one terminal state.
//
// Both modes serve the same API (JSON throughout):
//
//	POST   /v1/jobs            submit a spec; 202 {"id": ..., ...}
//	GET    /v1/jobs            list all job snapshots
//	GET    /v1/jobs/{id}       one snapshot; ?watch=1 streams NDJSON
//	                           snapshots until the job is terminal, ending
//	                           with a final snapshot that embeds the result
//	GET    /v1/jobs/{id}/result the terminal outcome (409 while running)
//	GET    /v1/jobs/{id}/trace  the recorded Chrome/Perfetto timeline
//	DELETE /v1/jobs/{id}       cancel the job
//	GET    /healthz            liveness, load, and (coordinator) fleet view
//
// On SIGTERM/SIGINT the daemon stops accepting submissions, drains
// in-flight jobs, and exits 0; a second signal hard-cancels everything.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"archcontest/internal/cluster"
	"archcontest/internal/cmdutil"
	"archcontest/internal/jobs"
	"archcontest/internal/spec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serve: ")
	addr := flag.String("addr", "localhost:8080", "listen address")
	workers := flag.Int("workers", 2, "concurrently executing jobs (node mode)")
	par := flag.Int("par", 0, "per-campaign simulation parallelism (0 = NumCPU)")
	queue := flag.Int("queue", 0, "max queued jobs before submissions are shed with 429 (0 = unbounded)")
	serveCache := flag.Bool("cache.serve", false, "export this node's result-cache blob store at /v1/blobs/")
	coord := flag.Bool("coord", false, "run as the cluster coordinator instead of a node")
	nodesFlag := flag.String("nodes", "", "comma-separated node base URLs (coordinator mode)")
	probe := flag.Duration("probe", 500*time.Millisecond, "node health-probe interval (coordinator mode)")
	drainTimeout := flag.Duration("drain", 10*time.Minute, "max time to drain in-flight jobs on shutdown")
	openCache := cmdutil.CacheFlags(nil)
	obsFlags := cmdutil.ObsFlags(nil)
	flag.Parse()
	obsFlags.StartPprof()

	if *coord {
		runCoordinator(*addr, *nodesFlag, *probe, *drainTimeout)
		return
	}

	cache := openCache()
	env := spec.NewEnv(cache)
	env.Parallelism = *par
	runner := jobs.NewRunner(env, *workers)
	opts := cluster.NodeOptions{MaxQueue: *queue, Cache: cache}
	if *serveCache {
		if store := cache.Store(); store != nil {
			opts.Blobs = store
		} else {
			log.Fatal("-cache.serve needs a backed cache (unset -cache.off, or point -cache.dir/-cache.remote somewhere)")
		}
	}
	srv := &http.Server{Addr: *addr, Handler: cluster.NewNode(runner, opts)}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on http://%s (workers=%d queue=%d)", ln.Addr(), *workers, *queue)

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("%v: draining (second signal hard-cancels)", sig)
	case err := <-errc:
		log.Fatal(err)
	}

	// Stop accepting HTTP traffic and drain the in-flight jobs. A second
	// signal, or the drain timeout, hard-cancels everything still running
	// and waits briefly for the cancellations to land.
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancelDrain()
	go func() {
		select {
		case sig := <-sigc:
			log.Printf("%v: hard-cancelling in-flight jobs", sig)
			cancelDrain()
		case <-drainCtx.Done():
		}
	}()
	go srv.Shutdown(drainCtx)
	if err := runner.Drain(drainCtx); err != nil {
		runner.CancelAll()
		landCtx, cancelLand := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancelLand()
		if err := runner.Drain(landCtx); err != nil {
			log.Fatalf("jobs stuck after hard cancel: %v", err)
		}
	}
	cmdutil.PrintCacheStats(env.Cache)
	log.Printf("drained, exiting")
}

// runCoordinator serves the cluster facade over the configured node set
// until a signal, then drains: no new submissions, and the process exits
// only once every accepted job has reached its terminal state (or the
// drain timeout forces the issue).
func runCoordinator(addr, nodesFlag string, probe, drainTimeout time.Duration) {
	var nodes []string
	for _, n := range strings.Split(nodesFlag, ",") {
		if n = strings.TrimSpace(n); n != "" {
			nodes = append(nodes, strings.TrimRight(n, "/"))
		}
	}
	if len(nodes) == 0 {
		log.Fatal("-coord needs -nodes with at least one node URL")
	}
	c := cluster.NewCoordinator(cluster.CoordOptions{Nodes: nodes, ProbeInterval: probe})
	defer c.Close()
	srv := &http.Server{Addr: addr, Handler: c.Handler()}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("coordinating %d nodes on http://%s", len(nodes), ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("%v: draining (second signal abandons in-flight jobs)", sig)
	case err := <-errc:
		log.Fatal(err)
	}

	drainCtx, cancelDrain := context.WithTimeout(context.Background(), drainTimeout)
	defer cancelDrain()
	go func() {
		select {
		case sig := <-sigc:
			log.Printf("%v: abandoning in-flight jobs", sig)
			cancelDrain()
		case <-drainCtx.Done():
		}
	}()
	go srv.Shutdown(drainCtx)
	if err := c.Drain(drainCtx); err != nil {
		log.Fatalf("drain incomplete: %v", err)
	}
	st := c.Stats()
	log.Printf("drained, exiting (submits=%d affinity=%d reroutes=%d lost=%d)",
		st.Submits, st.AffinityHits, st.Reroutes, st.Lost)
}
