// Command serve is the contest-as-a-service daemon: a long-running HTTP
// server that accepts declarative scenario specs (internal/spec) as jobs,
// executes them on a bounded worker pool (internal/jobs), and exposes
// progress snapshots, final results with archcontest-obs-v1 metrics, and
// Chrome/Perfetto timelines.
//
// API (JSON throughout):
//
//	POST   /v1/jobs            submit a spec; 202 {"id": "job-0001", ...}
//	GET    /v1/jobs            list all job snapshots
//	GET    /v1/jobs/{id}       one snapshot; ?watch=1 streams NDJSON
//	                           snapshots until the job is terminal, ending
//	                           with a final snapshot that embeds the result
//	GET    /v1/jobs/{id}/result the terminal outcome (409 while running)
//	GET    /v1/jobs/{id}/trace  the recorded Chrome/Perfetto timeline
//	DELETE /v1/jobs/{id}       cancel the job
//	GET    /healthz            liveness
//
// On SIGTERM/SIGINT the daemon stops accepting submissions, drains
// in-flight jobs, and exits 0; a second signal hard-cancels everything.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"archcontest/internal/cmdutil"
	"archcontest/internal/jobs"
	"archcontest/internal/spec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serve: ")
	addr := flag.String("addr", "localhost:8080", "listen address")
	workers := flag.Int("workers", 2, "concurrently executing jobs")
	par := flag.Int("par", 0, "per-campaign simulation parallelism (0 = NumCPU)")
	drainTimeout := flag.Duration("drain", 10*time.Minute, "max time to drain in-flight jobs on shutdown")
	openCache := cmdutil.CacheFlags(nil)
	obsFlags := cmdutil.ObsFlags(nil)
	flag.Parse()
	obsFlags.StartPprof()

	env := spec.NewEnv(openCache())
	env.Parallelism = *par
	runner := jobs.NewRunner(env, *workers)
	srv := &http.Server{Addr: *addr, Handler: newAPI(runner)}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on http://%s (workers=%d)", ln.Addr(), *workers)

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("%v: draining (second signal hard-cancels)", sig)
	case err := <-errc:
		log.Fatal(err)
	}

	// Stop accepting HTTP traffic and drain the in-flight jobs. A second
	// signal, or the drain timeout, hard-cancels everything still running
	// and waits briefly for the cancellations to land.
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancelDrain()
	go func() {
		select {
		case sig := <-sigc:
			log.Printf("%v: hard-cancelling in-flight jobs", sig)
			cancelDrain()
		case <-drainCtx.Done():
		}
	}()
	go srv.Shutdown(drainCtx)
	if err := runner.Drain(drainCtx); err != nil {
		runner.CancelAll()
		landCtx, cancelLand := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancelLand()
		if err := runner.Drain(landCtx); err != nil {
			log.Fatalf("jobs stuck after hard cancel: %v", err)
		}
	}
	cmdutil.PrintCacheStats(env.Cache)
	log.Printf("drained, exiting")
}

// api serves the /v1 job interface.
type api struct {
	runner *jobs.Runner
}

func newAPI(r *jobs.Runner) http.Handler {
	a := &api{runner: r}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("POST /v1/jobs", a.submit)
	mux.HandleFunc("GET /v1/jobs", a.list)
	mux.HandleFunc("GET /v1/jobs/{id}", a.get)
	mux.HandleFunc("GET /v1/jobs/{id}/result", a.result)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", a.trace)
	mux.HandleFunc("DELETE /v1/jobs/{id}", a.cancel)
	return mux
}

// jobView is a snapshot plus, once terminal, the outcome payload.
type jobView struct {
	jobs.Snapshot
	Result *spec.Outcome `json:"result,omitempty"`
}

func view(j *jobs.Job, withResult bool) jobView {
	v := jobView{Snapshot: j.Snapshot()}
	if withResult && v.State.Terminal() {
		if out, err := j.Outcome(); err == nil {
			v.Result = out
		}
	}
	return v
}

func (a *api) submit(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	defer body.Close()
	raw, err := io.ReadAll(body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	sp, err := spec.Parse(raw)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	j, err := a.runner.Submit(sp)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusAccepted, view(j, false))
}

func (a *api) list(w http.ResponseWriter, _ *http.Request) {
	all := a.runner.Jobs()
	views := make([]jobView, 0, len(all))
	for _, j := range all {
		views = append(views, view(j, false))
	}
	writeJSON(w, http.StatusOK, views)
}

func (a *api) job(w http.ResponseWriter, r *http.Request) (*jobs.Job, bool) {
	j, ok := a.runner.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
	}
	return j, ok
}

func (a *api) get(w http.ResponseWriter, r *http.Request) {
	j, ok := a.job(w, r)
	if !ok {
		return
	}
	if r.URL.Query().Get("watch") == "" {
		writeJSON(w, http.StatusOK, view(j, true))
		return
	}
	a.watch(w, r, j)
}

// watch streams NDJSON snapshots whenever the job's sequence counter
// advances, ending with a final snapshot embedding the result (including
// the archcontest-obs-v1 metrics for recorded jobs).
func (a *api) watch(w http.ResponseWriter, r *http.Request, j *jobs.Job) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(v jobView) bool {
		if err := enc.Encode(v); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	lastSeq := int64(-1)
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	for {
		snap := j.Snapshot()
		if snap.Seq != lastSeq {
			lastSeq = snap.Seq
			if snap.State.Terminal() {
				emit(view(j, true))
				return
			}
			if !emit(jobView{Snapshot: snap}) {
				return
			}
		} else if snap.State.Terminal() {
			emit(view(j, true))
			return
		}
		select {
		case <-j.Done():
			// Loop once more to emit the terminal snapshot.
		case <-tick.C:
		case <-r.Context().Done():
			return
		}
	}
}

func (a *api) result(w http.ResponseWriter, r *http.Request) {
	j, ok := a.job(w, r)
	if !ok {
		return
	}
	snap := j.Snapshot()
	if !snap.State.Terminal() {
		writeErr(w, http.StatusConflict, fmt.Errorf("job %s is %s", snap.ID, snap.State))
		return
	}
	writeJSON(w, http.StatusOK, view(j, true))
}

func (a *api) trace(w http.ResponseWriter, r *http.Request) {
	j, ok := a.job(w, r)
	if !ok {
		return
	}
	snap := j.Snapshot()
	if !snap.State.Terminal() {
		writeErr(w, http.StatusConflict, fmt.Errorf("job %s is %s", snap.ID, snap.State))
		return
	}
	out, err := j.Outcome()
	if err != nil || out == nil {
		writeErr(w, http.StatusConflict, fmt.Errorf("job %s has no result", snap.ID))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := out.WriteChromeTrace(w); err != nil {
		writeErr(w, http.StatusNotFound, err)
	}
}

func (a *api) cancel(w http.ResponseWriter, r *http.Request) {
	j, ok := a.job(w, r)
	if !ok {
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusAccepted, view(j, false))
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
