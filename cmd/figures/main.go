// Command figures regenerates the tables and figures of the paper's
// evaluation from the reproduction's simulators.
//
// Each experiment is a declarative scenario (internal/spec) executed in a
// shared environment — the same path cmd/serve jobs take — so artifacts
// are computed once per process however many experiments share them, leaf
// simulations run on all cores, and with the persistent result cache
// enabled (the default) a re-run only simulates what changed since the
// last one. Ctrl-C cancels the campaign cooperatively: un-started leaves
// are abandoned and the cache keeps every completed leaf.
//
// Usage:
//
//	figures                      # every experiment at the default scale
//	figures -experiment fig6     # one experiment
//	figures -n 200000            # shorter traces (faster, noisier)
//	figures -par 4               # bound concurrent simulations
//	figures -cache.dir DIR       # result cache location (default .archcontest-cache)
//	figures -cache.off           # recompute everything
//	figures -list                # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"archcontest/internal/cmdutil"
	"archcontest/internal/experiments"
	"archcontest/internal/obs"
	"archcontest/internal/spec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")
	n := flag.Int("n", 1_000_000, "trace length in instructions")
	experiment := flag.String("experiment", "", "experiment ID (empty = all); comma-separated IDs allowed")
	latency := flag.Float64("latency", 1.0, "core-to-core latency in ns")
	pairs := flag.Int("pairs", 3, "oracle-shortlisted candidate pairs per benchmark")
	par := flag.Int("par", 0, "max concurrent simulations (0 = NumCPU)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	openCache := cmdutil.CacheFlags(nil)
	obsFlags := cmdutil.ObsFlags(nil)
	flag.Parse()
	obsFlags.StartPprof()

	if *list {
		for _, id := range experiments.RegistryOrder {
			fmt.Println(id)
		}
		return
	}

	ctx, stop := cmdutil.SignalContext()
	defer stop()

	ids := experiments.RegistryOrder
	if *experiment != "" {
		ids = strings.Split(*experiment, ",")
	}
	env := spec.NewEnv(openCache())
	env.Parallelism = *par
	if obsFlags.Wanted() {
		env.Artifacts = obs.NewArtifactLog()
	}
	var campaign func() experiments.CampaignStats
	hooks := spec.Hooks{Campaign: func(stats func() experiments.CampaignStats) { campaign = stats }}
	cmdutil.Publish("archcontest.campaign", func() any {
		if campaign == nil {
			return experiments.CampaignStats{}
		}
		return campaign()
	})
	campaignStart := time.Now()
	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		out, err := spec.Execute(ctx, spec.Spec{
			Kind: spec.KindExperiment, Experiment: id,
			N: *n, LatencyNs: *latency, Pairs: *pairs,
		}, env, hooks)
		if err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		out.Table.Fprint(os.Stdout)
		fmt.Printf("(%s computed in %v at n=%d)\n\n", id, time.Since(start).Round(time.Millisecond), *n)
	}
	var st experiments.CampaignStats
	if campaign != nil {
		st = campaign()
	}
	fmt.Fprintf(os.Stderr, "campaign: %v wall, %d traces generated, %d simulations, %d contests executed\n",
		time.Since(campaignStart).Round(time.Millisecond), st.TraceGens, st.Simulations, st.Contests)
	if env.Artifacts != nil {
		if err := obsFlags.WriteTimeline(env.Artifacts.WriteChromeTrace); err != nil {
			log.Fatalf("timeline: %v", err)
		}
		if err := obsFlags.WriteMetricsJSON(struct {
			Campaign  experiments.CampaignStats `json:"campaign"`
			Artifacts obs.CampaignSummary       `json:"artifacts"`
		}{st, env.Artifacts.Summary()}); err != nil {
			log.Fatalf("metrics: %v", err)
		}
	}
	cmdutil.PrintCacheStats(env.Cache)
}
