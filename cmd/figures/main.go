// Command figures regenerates the tables and figures of the paper's
// evaluation from the reproduction's simulators.
//
// The campaign is parallel and incremental: artifacts are computed once
// per process however many experiments share them, leaf simulations run on
// all cores, and with the persistent result cache enabled (the default) a
// re-run only simulates what changed since the last one.
//
// Usage:
//
//	figures                      # every experiment at the default scale
//	figures -experiment fig6     # one experiment
//	figures -n 200000            # shorter traces (faster, noisier)
//	figures -par 4               # bound concurrent simulations
//	figures -cache.dir DIR       # result cache location (default .archcontest-cache)
//	figures -cache.off           # recompute everything
//	figures -list                # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"archcontest/internal/cmdutil"
	"archcontest/internal/experiments"
	"archcontest/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")
	n := flag.Int("n", 1_000_000, "trace length in instructions")
	experiment := flag.String("experiment", "", "experiment ID (empty = all); comma-separated IDs allowed")
	latency := flag.Float64("latency", 1.0, "core-to-core latency in ns")
	pairs := flag.Int("pairs", 3, "oracle-shortlisted candidate pairs per benchmark")
	par := flag.Int("par", 0, "max concurrent simulations (0 = NumCPU)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	openCache := cmdutil.CacheFlags(nil)
	obsFlags := cmdutil.ObsFlags(nil)
	flag.Parse()
	obsFlags.StartPprof()

	if *list {
		for _, id := range experiments.RegistryOrder {
			fmt.Println(id)
		}
		return
	}

	ids := experiments.RegistryOrder
	if *experiment != "" {
		ids = strings.Split(*experiment, ",")
	}
	cache := openCache()
	var artifacts *obs.ArtifactLog
	if obsFlags.Wanted() {
		artifacts = obs.NewArtifactLog()
	}
	lab := experiments.NewLab(experiments.Config{
		N:              *n,
		LatencyNs:      *latency,
		CandidatePairs: *pairs,
		Parallelism:    *par,
		Cache:          cache,
		Artifacts:      artifacts,
	})
	cmdutil.Publish("archcontest.campaign", func() any { return lab.CampaignStats() })
	campaignStart := time.Now()
	for _, id := range ids {
		id = strings.TrimSpace(id)
		exp, ok := experiments.Registry[id]
		if !ok {
			log.Fatalf("unknown experiment %q (use -list)", id)
		}
		start := time.Now()
		tab, err := exp(lab)
		if err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		tab.Fprint(os.Stdout)
		fmt.Printf("(%s computed in %v at n=%d)\n\n", id, time.Since(start).Round(time.Millisecond), *n)
	}
	st := lab.CampaignStats()
	fmt.Fprintf(os.Stderr, "campaign: %v wall, %d traces generated, %d simulations, %d contests executed\n",
		time.Since(campaignStart).Round(time.Millisecond), st.TraceGens, st.Simulations, st.Contests)
	if artifacts != nil {
		if err := obsFlags.WriteTimeline(artifacts.WriteChromeTrace); err != nil {
			log.Fatalf("timeline: %v", err)
		}
		if err := obsFlags.WriteMetricsJSON(struct {
			Campaign  experiments.CampaignStats `json:"campaign"`
			Artifacts obs.CampaignSummary       `json:"artifacts"`
		}{st, artifacts.Summary()}); err != nil {
			log.Fatalf("metrics: %v", err)
		}
	}
	cmdutil.PrintCacheStats(cache)
}
