// Command cachesrv is a standalone result-cache blob store: the remote
// tier behind `-cache.remote`. It serves the resultcache blob API over a
// disk-backed store:
//
//	GET    /v1/blobs/{key}  fetch a blob (404 when absent)
//	PUT    /v1/blobs/{key}  store a blob
//	DELETE /v1/blobs/{key}  drop a blob (idempotent)
//	GET    /healthz         liveness
//
// Fleet nodes pointed at one cachesrv share their simulation results:
// whichever node computes an artifact first persists it here, and every
// other node's next lookup hits. A serve node with -cache.serve exposes
// the same API embedded; cachesrv is the dedicated-process deployment.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"archcontest/internal/resultcache"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cachesrv: ")
	addr := flag.String("addr", "localhost:8081", "listen address")
	dir := flag.String("dir", resultcache.DefaultDir, "blob store directory")
	flag.Parse()

	store, err := resultcache.NewDiskStore(*dir)
	if err != nil {
		log.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.Handle("/v1/blobs/", resultcache.BlobHandler(store))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"status":"ok"}` + "\n"))
	})
	srv := &http.Server{Addr: *addr, Handler: mux}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving blobs from %s on http://%s", *dir, ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("%v: shutting down", sig)
	case err := <-errc:
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatalf("shutdown: %v", err)
	}
	log.Printf("exiting")
}
