package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"archcontest"
	"archcontest/internal/cache"
)

// scalingRow is one worker count of the multi-core scaling leg: the same
// fixed job set timed end-to-end under RunBatch with Workers=N.
type scalingRow struct {
	Workers     int     `json:"workers"`
	Jobs        int     `json:"jobs"`
	Insts       int64   `json:"insts"` // total simulated instructions across jobs
	WallSeconds float64 `json:"wall_seconds"`
	MIPS        float64 `json:"mips"` // aggregate simulated Minst per wall second
	// Scaling is MIPS relative to the workers=1 row of the same series
	// (recomputed after -merge, so it always reflects the merged walls).
	Scaling float64 `json:"scaling"`
}

// parseWorkerList parses a comma-separated list of worker counts.
func parseWorkerList(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		w, err := strconv.Atoi(f)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad worker count %q", f)
		}
		out = append(out, w)
	}
	sort.Ints(out)
	return out, nil
}

// scalingJobs builds the fixed job set of the scaling leg: two copies of
// each Table-1 single-core scenario. The set is identical for every worker
// count, so aggregate MIPS is comparable across rows, and traces are
// shared between copies (cores only read them).
func scalingJobs(n int) []archcontest.BatchItem {
	benches := []string{"mcf", "gcc", "crafty", "twolf"}
	items := make([]archcontest.BatchItem, 0, 2*len(benches))
	for _, b := range benches {
		tr := archcontest.MustGenerateTrace(b, n)
		cfg := archcontest.MustPaletteCore(b)
		for c := 0; c < 2; c++ {
			items = append(items, archcontest.BatchItem{
				Config: cfg,
				Trace:  tr,
				Opts:   archcontest.RunOptions{WritePolicy: cache.WriteThrough},
			})
		}
	}
	return items
}

// runScalingLeg times the fixed job set once per worker count and returns
// the rows, best-of-repeat per row. GroupSize 1 spreads the jobs across
// workers; the within-worker interleave is measured by the batch
// microbenchmarks instead, so this leg isolates multi-core scaling.
func runScalingLeg(ctx context.Context, workerCounts []int, n, repeat int) []scalingRow {
	items := scalingJobs(n)
	var total int64
	for _, it := range items {
		total += int64(it.Trace.Len())
	}
	rows := make([]scalingRow, 0, len(workerCounts))
	for _, w := range workerCounts {
		best := math.MaxFloat64
		for i := 0; i < repeat; i++ {
			start := time.Now()
			if _, err := archcontest.RunBatch(ctx, items, archcontest.BatchOptions{Workers: w, GroupSize: 1}); err != nil {
				log.Fatalf("scaling workers=%d: %v", w, err)
			}
			if sec := time.Since(start).Seconds(); sec < best {
				best = sec
			}
		}
		rows = append(rows, scalingRow{
			Workers:     w,
			Jobs:        len(items),
			Insts:       total,
			WallSeconds: best,
			MIPS:        float64(total) / best / 1e6,
		})
	}
	fillScaling(rows)
	for _, r := range rows {
		fmt.Printf("scaling %2d workers  %8.3fs  %8.2f MIPS  %5.2fx\n",
			r.Workers, r.WallSeconds, r.MIPS, r.Scaling)
	}
	return rows
}

// contestScalingJobs builds the fixed contest job set of the contest
// scaling leg: two copies of each Table-1 contest scenario. Traces are
// shared between copies (systems only read them).
func contestScalingJobs(n int) []archcontest.ContestBatchItem {
	pairs := [][]string{
		{"twolf", "vpr"},
		{"mcf", "gcc"},
		{"gcc", "mcf", "bzip", "crafty"},
	}
	items := make([]archcontest.ContestBatchItem, 0, 2*len(pairs))
	for _, cores := range pairs {
		tr := archcontest.MustGenerateTrace(cores[0], n)
		cfgs := make([]archcontest.CoreConfig, len(cores))
		for i, c := range cores {
			cfgs[i] = archcontest.MustPaletteCore(c)
		}
		for c := 0; c < 2; c++ {
			items = append(items, archcontest.ContestBatchItem{Configs: cfgs, Trace: tr})
		}
	}
	return items
}

// runContestScalingLeg times the fixed contest job set once per worker
// count under ContestRunBatch, best-of-repeat per row. GroupSize 1
// isolates multi-core scaling of whole contest systems, symmetric with
// the single-core scaling leg.
func runContestScalingLeg(ctx context.Context, workerCounts []int, n, repeat int) []scalingRow {
	items := contestScalingJobs(n)
	var total int64
	for _, it := range items {
		total += int64(it.Trace.Len())
	}
	rows := make([]scalingRow, 0, len(workerCounts))
	for _, w := range workerCounts {
		best := math.MaxFloat64
		for i := 0; i < repeat; i++ {
			start := time.Now()
			if _, err := archcontest.ContestRunBatch(ctx, items, archcontest.ContestBatchOptions{Workers: w, GroupSize: 1}); err != nil {
				log.Fatalf("contest scaling workers=%d: %v", w, err)
			}
			if sec := time.Since(start).Seconds(); sec < best {
				best = sec
			}
		}
		rows = append(rows, scalingRow{
			Workers:     w,
			Jobs:        len(items),
			Insts:       total,
			WallSeconds: best,
			MIPS:        float64(total) / best / 1e6,
		})
	}
	fillScaling(rows)
	for _, r := range rows {
		fmt.Printf("contest scaling %2d workers  %8.3fs  %8.2f MIPS  %5.2fx\n",
			r.Workers, r.WallSeconds, r.MIPS, r.Scaling)
	}
	return rows
}

// fillScaling recomputes MIPS and the Scaling column from the walls, using
// the workers=1 row (or the smallest worker count present) as the unit.
func fillScaling(rows []scalingRow) {
	if len(rows) == 0 {
		return
	}
	base := rows[0]
	for _, r := range rows {
		if r.Workers < base.Workers {
			base = r
		}
	}
	for i := range rows {
		r := &rows[i]
		if r.WallSeconds > 0 {
			r.MIPS = float64(r.Insts) / r.WallSeconds / 1e6
		}
		if base.WallSeconds > 0 && r.WallSeconds > 0 {
			r.Scaling = base.WallSeconds / r.WallSeconds
		}
	}
}

// mergeScaling folds previous scaling rows in, keeping the best wall per
// (workers, jobs, insts) row, then recomputes the derived columns.
func mergeScaling(fresh []scalingRow, prev []scalingRow) []scalingRow {
	type key struct {
		workers, jobs int
		insts         int64
	}
	byKey := make(map[key]scalingRow, len(prev))
	for _, r := range prev {
		byKey[key{r.Workers, r.Jobs, r.Insts}] = r
	}
	for i := range fresh {
		r := &fresh[i]
		if old, ok := byKey[key{r.Workers, r.Jobs, r.Insts}]; ok && old.WallSeconds < r.WallSeconds {
			r.WallSeconds = old.WallSeconds
		}
	}
	fillScaling(fresh)
	return fresh
}
