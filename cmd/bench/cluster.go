package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"runtime"
	"time"

	"archcontest/internal/cluster"
	"archcontest/internal/cmdutil"
)

// clusterReport is the BENCH_cluster.json schema: the cache-aware-routing
// fleet against the round-robin baseline, each measured over a cold pass
// (caches empty) and a warm pass (same job set resubmitted).
type clusterReport struct {
	Generated string                     `json:"generated"`
	NumCPU    int                        `json:"num_cpu"`
	Affinity  *cluster.LoadTestResult    `json:"affinity"`
	Baseline  *cluster.LoadTestResult    `json:"round_robin_baseline"`
	Summary   map[string]json.RawMessage `json:"summary,omitempty"`
}

// runClusterBench drives the in-process fleet load harness
// (internal/cluster.RunLoadTest) with both routers and writes the
// comparison to out.
func runClusterBench(ctx context.Context, nodes, streams, jobs, n int, out string) {
	opts := cluster.LoadTestOptions{
		Nodes:   nodes,
		Streams: streams,
		Jobs:    jobs,
		N:       int64(n),
	}
	log.Printf("cluster bench: %d nodes, %d streams, %d jobs/pass, n=%d", nodes, streams, jobs, n)

	affinity, err := runLeg(ctx, "cache-aware", opts)
	if err != nil {
		log.Fatalf("cache-aware leg: %v", err)
	}
	opts.RoundRobin = true
	baseline, err := runLeg(ctx, "round-robin", opts)
	if err != nil {
		log.Fatalf("round-robin leg: %v", err)
	}

	if affinity.Warm.HitRate < baseline.Warm.HitRate {
		log.Printf("WARNING: cache-aware warm hit rate %.3f fell below the round-robin baseline %.3f",
			affinity.Warm.HitRate, baseline.Warm.HitRate)
	}

	rep := clusterReport{
		Generated: time.Now().UTC().Format(time.RFC3339),
		NumCPU:    runtime.NumCPU(),
		Affinity:  affinity,
		Baseline:  baseline,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := cmdutil.WriteFileAtomic(out, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", out)
}

func runLeg(ctx context.Context, name string, opts cluster.LoadTestOptions) (*cluster.LoadTestResult, error) {
	start := time.Now()
	res, err := cluster.RunLoadTest(ctx, opts)
	if err != nil {
		return nil, err
	}
	fmt.Printf("%-12s cold: p50 %8.1fms  p99 %8.1fms  hit %5.3f | warm: p50 %8.1fms  p99 %8.1fms  hit %5.3f  (%.1fs)\n",
		name,
		res.Cold.P50Ms, res.Cold.P99Ms, res.Cold.HitRate,
		res.Warm.P50Ms, res.Warm.P99Ms, res.Warm.HitRate,
		time.Since(start).Seconds())
	return res, nil
}
