package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"runtime"
	"time"

	"archcontest"
	"archcontest/internal/cmdutil"
)

// statecostRow is one sweep point of the state-transfer benchmark: a
// kill-refork contest at one warm-up cost, compared against the own core.
type statecostRow struct {
	Benchmark string `json:"benchmark"`
	// WarmupNs is the swept per-refork state-transfer interval; -1 marks
	// the exception-free reference contest.
	WarmupNs float64 `json:"warmup_ns"`
	// Cold reports whether reforked cores also restarted with reset
	// predictors and invalidated caches on top of the warm-up charge.
	Cold bool `json:"cold"`
	// ContestIPT and OwnIPT are simulated instructions per nanosecond.
	ContestIPT float64 `json:"contest_ipt"`
	OwnIPT     float64 `json:"own_ipt"`
	// Speedup is ContestIPT/OwnIPT - 1: negative means the state-transfer
	// cost has pushed contesting below just running the own core.
	Speedup float64 `json:"speedup"`
	// StateTransferNs is the total warm-up time the run charged.
	StateTransferNs float64 `json:"state_transfer_ns"`
	WallSeconds     float64 `json:"wall_seconds"`
}

type statecostReport struct {
	Generated string         `json:"generated"`
	Insts     int            `json:"insts"`
	NumCPU    int            `json:"num_cpu"`
	Rows      []statecostRow `json:"rows"`
	// Crossovers maps each benchmark/state pair ("gcc/warm", "gcc/cold")
	// to the smallest swept warm-up at which contesting stopped beating
	// the own core (absent: none did).
	Crossovers map[string]float64 `json:"crossovers,omitempty"`
}

// statecostPairs are the contested pairs of the sweep: each benchmark's own
// core against the complementary core its phases alternate toward (the
// best-pair choices of the full campaign, pinned here so the benchmark
// needs no campaign pass).
var statecostPairs = map[string][]string{
	"gcc":   {"gcc", "mcf"},
	"twolf": {"twolf", "vpr"},
}

// runStatecostBench sweeps the kill-refork state-transfer warm-up from free
// to OS-migration scale and emits one BENCH row per sweep point, tracking
// where the contesting-wins crossover moves as the cost grows.
func runStatecostBench(ctx context.Context, n int, out string) {
	if n <= 0 {
		log.Fatalf("-statecost.n must be positive, got %d", n)
	}
	warmups := []float64{0, 500, 2000, 5000, 10000, 20000}
	rep := statecostReport{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		Insts:      n,
		NumCPU:     runtime.NumCPU(),
		Crossovers: map[string]float64{},
	}
	fmt.Printf("%-8s %-5s %12s %12s %12s %9s\n", "bench", "state", "warmup ns", "contest IPT", "own IPT", "speedup")
	for _, bench := range []string{"gcc", "twolf"} {
		tr := archcontest.MustGenerateTrace(bench, n)
		own := archcontest.MustRun(archcontest.MustPaletteCore(bench), tr)
		pair := statecostPairs[bench]
		cfgs := []archcontest.CoreConfig{
			archcontest.MustPaletteCore(pair[0]),
			archcontest.MustPaletteCore(pair[1]),
		}
		for _, cold := range []bool{false, true} {
			state := "warm"
			if cold {
				state = "cold"
			}
			points := warmups
			if !cold {
				// One exception-free reference contest per benchmark.
				points = append([]float64{-1}, warmups...)
			}
			for _, w := range points {
				opts := archcontest.ContestOptions{}
				if w >= 0 {
					opts = archcontest.ContestOptions{
						ExceptionEvery:      50000,
						ExceptionKillRefork: true,
						ReforkWarmupNs:      w,
						ReforkColdPredictor: cold,
						ReforkColdCaches:    cold,
					}
				}
				start := time.Now()
				r, err := archcontest.ContestRunContext(ctx, cfgs, tr, opts)
				if err != nil {
					log.Fatalf("statecost %s warmup=%g: %v", bench, w, err)
				}
				row := statecostRow{
					Benchmark:       bench,
					WarmupNs:        w,
					Cold:            cold,
					ContestIPT:      r.IPT(),
					OwnIPT:          own.IPT(),
					Speedup:         r.IPT()/own.IPT() - 1,
					StateTransferNs: r.StateTransfer.Nanoseconds(),
					WallSeconds:     time.Since(start).Seconds(),
				}
				rep.Rows = append(rep.Rows, row)
				key := bench + "/" + state
				if _, seen := rep.Crossovers[key]; w >= 0 && row.Speedup <= 0 && !seen {
					rep.Crossovers[key] = w
				}
				fmt.Printf("%-8s %-5s %12g %12.3f %12.3f %8.1f%%\n", bench, state, w, row.ContestIPT, row.OwnIPT, 100*row.Speedup)
			}
		}
	}
	for _, bench := range []string{"gcc", "twolf"} {
		for _, state := range []string{"warm", "cold"} {
			if w, ok := rep.Crossovers[bench+"/"+state]; ok {
				fmt.Printf("%-8s %-5s crossover at warmup %gns\n", bench, state, w)
			}
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := cmdutil.WriteFileAtomic(out, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", out)
}
