// Command bench measures simulation throughput of the execution engine —
// simulated instructions per wall-second (MIPS) — for the event-driven
// fast-forward path and the reference single-step path, and emits the
// results as BENCH_engine.json so the perf trajectory is tracked across
// PRs. With -campaign it instead measures the campaign engine: the full
// figures experiment sweep cold-cache with one worker, cold-cache with all
// workers, and warm-cache, emitting BENCH_campaign.json.
//
// Usage:
//
//	bench                      # default scenarios at 200k instructions
//	bench -n 1000000           # longer traces
//	bench -repeat 5            # best-of-5 timing
//	bench -o out.json          # output path (default BENCH_engine.json)
//	bench -fast-only           # skip the slow single-step reference
//	bench -verify=false        # skip the invariant-checker-attached timings
//	bench -record=false        # skip the observability-recorder-attached timings
//	bench -merge               # keep the best time per leg across repeated runs
//	bench -baseline old.json   # report checker-off wall-time ratio vs old run(s)
//	bench -workers "1,2,4"     # batched multi-worker scaling leg (RunBatch)
//	bench -cpuprofile p.prof   # CPU profile (source for cmd/bench/default.pgo)
//	bench -campaign            # campaign benchmark -> BENCH_campaign.json
//	bench -campaign -campaign.n 100000
//	bench -statecost           # kill-refork warm-up sweep -> BENCH_statecost.json
//	bench -leaderboard         # component championship -> BENCH_leaderboard.json
//	bench -campaign -campaign.workers "1,2,4"  # cold-cache worker scaling rows
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"archcontest"
	"archcontest/internal/cmdutil"
	"archcontest/internal/obs"
)

type timing struct {
	WallSeconds float64 `json:"wall_seconds"`
	MIPS        float64 `json:"mips"`
}

type scenarioResult struct {
	Name        string  `json:"name"`
	Insts       int     `json:"insts"`
	EventDriven timing  `json:"event_driven"`
	SingleStep  *timing `json:"single_step,omitempty"`
	Speedup     float64 `json:"speedup,omitempty"`
	// Verified times the same scenario with the oracle + invariant checker
	// attached; VerifyOverhead is verified/event_driven wall time. The
	// checker-off leg (event_driven) is the number comparable across PRs:
	// with no checker attached the hooks are single nil checks.
	Verified       *timing `json:"verified,omitempty"`
	VerifyOverhead float64 `json:"verify_overhead,omitempty"`
	// Recorded times the same scenario with the observability recorder
	// attached; RecordOverhead is recorded/event_driven wall time. The
	// recorder-off leg is still event_driven — comparing it against a
	// previous run's BENCH_engine.json (-baseline) is the regression gate
	// for "a detached recorder costs nothing".
	Recorded       *timing `json:"recorded,omitempty"`
	RecordOverhead float64 `json:"record_overhead,omitempty"`
}

type report struct {
	Generated      string           `json:"generated"`
	Insts          int              `json:"insts"`
	Repeat         int              `json:"repeat"`
	NumCPU         int              `json:"num_cpu"`
	Scenarios      []scenarioResult `json:"scenarios"`
	GeomeanSpeedup float64          `json:"geomean_speedup,omitempty"`
	// Scaling holds the multi-worker throughput series (see -workers).
	// Interpret it against NumCPU: on a single-CPU runner the series
	// honestly bounds at ~1.0x no matter how well the engine scales.
	Scaling []scalingRow `json:"scaling,omitempty"`
	// ContestScaling is the same series over whole contest systems
	// (ContestRunBatch, see -contest.workers), with the same NumCPU caveat.
	ContestScaling []scalingRow     `json:"contest_scaling,omitempty"`
	Baseline       *baselineCompare `json:"baseline,omitempty"`
}

// baselineCompare reports the checker-off (event-driven) wall-time ratio of
// this run against a previous BENCH_engine.json, per scenario and as a
// geomean — the regression gate for "attaching the verification hooks costs
// nothing when no checker is attached".
type baselineCompare struct {
	Path              string             `json:"path"`
	Generated         string             `json:"generated"`
	EventRatios       map[string]float64 `json:"event_ratios"`
	GeomeanEventRatio float64            `json:"geomean_event_ratio"`
}

// mergeReport folds a previous report's timings into the fresh one, keeping
// the best (minimum) wall time per scenario leg. Interleaving several
// `bench -merge` invocations with runs of a baseline binary is how to
// compare two engine builds on a noisy machine: slow load drift between the
// two programs' invocations swamps a sub-percent difference, while
// alternating rounds sample the same drift for both sides.
func mergeReport(fresh *report, prev report) {
	byName := make(map[string]scenarioResult, len(prev.Scenarios))
	for _, s := range prev.Scenarios {
		byName[s.Name] = s
	}
	minLeg := func(cur *timing, old *timing) {
		if old != nil && old.WallSeconds < cur.WallSeconds {
			*cur = *old
		}
	}
	logSpeedup, speedups := 0.0, 0
	for i := range fresh.Scenarios {
		s := &fresh.Scenarios[i]
		old, ok := byName[s.Name]
		if !ok || old.Insts != s.Insts {
			continue
		}
		minLeg(&s.EventDriven, &old.EventDriven)
		if s.SingleStep == nil {
			s.SingleStep = old.SingleStep
		} else {
			minLeg(s.SingleStep, old.SingleStep)
		}
		if s.Verified == nil {
			s.Verified = old.Verified
		} else {
			minLeg(s.Verified, old.Verified)
		}
		if s.Recorded == nil {
			s.Recorded = old.Recorded
		} else {
			minLeg(s.Recorded, old.Recorded)
		}
		if s.SingleStep != nil {
			s.Speedup = s.SingleStep.WallSeconds / s.EventDriven.WallSeconds
			logSpeedup += math.Log(s.Speedup)
			speedups++
		}
		if s.Verified != nil {
			s.VerifyOverhead = s.Verified.WallSeconds / s.EventDriven.WallSeconds
		}
		if s.Recorded != nil {
			s.RecordOverhead = s.Recorded.WallSeconds / s.EventDriven.WallSeconds
		}
	}
	if speedups > 0 {
		fresh.GeomeanSpeedup = math.Exp(logSpeedup / float64(speedups))
	}
	if len(fresh.Scaling) == 0 {
		// A run without the scaling leg must not drop a previous series.
		fresh.Scaling = prev.Scaling
	} else {
		fresh.Scaling = mergeScaling(fresh.Scaling, prev.Scaling)
	}
	if len(fresh.ContestScaling) == 0 {
		fresh.ContestScaling = prev.ContestScaling
	} else {
		fresh.ContestScaling = mergeScaling(fresh.ContestScaling, prev.ContestScaling)
	}
}

// compareBaseline compares checker-off wall times against one or more
// (comma-separated) previous BENCH_engine.json files, taking the best time
// per scenario across all of them.
func compareBaseline(path string, scenarios []scenarioResult) (*baselineCompare, error) {
	cmp := &baselineCompare{Path: path, EventRatios: map[string]float64{}}
	baseWall := map[string]float64{}
	for _, p := range strings.Split(path, ",") {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		var base report
		if err := json.Unmarshal(data, &base); err != nil {
			return nil, fmt.Errorf("%s: %v", p, err)
		}
		cmp.Generated = base.Generated
		for _, s := range base.Scenarios {
			w := s.EventDriven.WallSeconds
			if prev, ok := baseWall[s.Name]; !ok || w < prev {
				baseWall[s.Name] = w
			}
		}
	}
	logSum, count := 0.0, 0
	for _, s := range scenarios {
		w, ok := baseWall[s.Name]
		if !ok || w <= 0 {
			continue
		}
		r := s.EventDriven.WallSeconds / w
		cmp.EventRatios[s.Name] = r
		logSum += math.Log(r)
		count++
	}
	if count == 0 {
		return nil, fmt.Errorf("%s: no overlapping scenarios", path)
	}
	cmp.GeomeanEventRatio = math.Exp(logSum / float64(count))
	return cmp, nil
}

type scenario struct {
	name        string
	run         func(singleStep bool) error
	runVerified func() error
	runRecorded func() error
}

func singleScenario(ctx context.Context, bench, core string, n int) scenario {
	tr := archcontest.MustGenerateTrace(bench, n)
	cfg := archcontest.MustPaletteCore(core)
	return scenario{
		name: fmt.Sprintf("single/%s-on-%s", bench, core),
		run: func(singleStep bool) error {
			r, err := archcontest.RunContext(ctx, cfg, tr, archcontest.RunOptions{SingleStep: singleStep})
			if err != nil {
				return err
			}
			if r.Insts != int64(tr.Len()) {
				return fmt.Errorf("incomplete run: %d of %d", r.Insts, tr.Len())
			}
			return nil
		},
		runVerified: func() error {
			_, err := archcontest.RunVerified(cfg, tr)
			return err
		},
		runRecorded: func() error {
			rec := obs.NewRecorder(obs.Options{})
			r, err := archcontest.RunContext(ctx, cfg, tr, archcontest.RunOptions{Checker: rec.CoreChecker(0)})
			if err != nil {
				return err
			}
			rec.FinishRun(r)
			if len(rec.Events()) == 0 {
				return fmt.Errorf("recorder captured nothing")
			}
			return nil
		},
	}
}

func contestScenario(ctx context.Context, bench string, cores []string, n int) scenario {
	tr := archcontest.MustGenerateTrace(bench, n)
	cfgs := make([]archcontest.CoreConfig, len(cores))
	for i, c := range cores {
		cfgs[i] = archcontest.MustPaletteCore(c)
	}
	name := fmt.Sprintf("contest%d/%s", len(cores), bench)
	return scenario{
		name: name,
		run: func(singleStep bool) error {
			r, err := archcontest.ContestRunContext(ctx, cfgs, tr, archcontest.ContestOptions{SingleStep: singleStep})
			if err != nil {
				return err
			}
			if r.Insts != int64(tr.Len()) {
				return fmt.Errorf("incomplete run: %d of %d", r.Insts, tr.Len())
			}
			return nil
		},
		runVerified: func() error {
			_, err := archcontest.ContestRunVerified(cfgs, tr, archcontest.ContestOptions{})
			return err
		},
		runRecorded: func() error {
			rec := obs.NewRecorder(obs.Options{})
			r, err := archcontest.ContestRunContext(ctx, cfgs, tr, archcontest.ContestOptions{Observer: rec})
			if err != nil {
				return err
			}
			rec.FinishContest(r)
			if len(rec.Events()) == 0 {
				return fmt.Errorf("recorder captured nothing")
			}
			return nil
		},
	}
}

// timeFn measures the best wall-clock time of `repeat` runs.
func timeFn(run func() error, repeat, n int) (timing, error) {
	best := math.MaxFloat64
	for i := 0; i < repeat; i++ {
		start := time.Now()
		if err := run(); err != nil {
			return timing{}, err
		}
		if sec := time.Since(start).Seconds(); sec < best {
			best = sec
		}
	}
	return timing{WallSeconds: best, MIPS: float64(n) / best / 1e6}, nil
}

func timeScenario(s scenario, singleStep bool, repeat, n int) (timing, error) {
	return timeFn(func() error { return s.run(singleStep) }, repeat, n)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench: ")
	n := flag.Int("n", 200_000, "trace length in instructions")
	repeat := flag.Int("repeat", 3, "runs per scenario (best time wins)")
	out := flag.String("o", "BENCH_engine.json", "output JSON path")
	fastOnly := flag.Bool("fast-only", false, "skip the single-step reference timings")
	verify := flag.Bool("verify", true, "also time each scenario with the invariant checker attached")
	record := flag.Bool("record", true, "also time each scenario with the observability recorder attached")
	baseline := flag.String("baseline", "", "previous BENCH_engine.json file(s), comma-separated, to compare checker-off times against")
	merge := flag.Bool("merge", false, "fold the existing output file's timings in, keeping the best per leg")
	campaign := flag.Bool("campaign", false, "benchmark the campaign engine instead of the execution engine")
	campaignN := flag.Int("campaign.n", 60_000, "campaign trace length in instructions")
	campaignOut := flag.String("campaign.o", "BENCH_campaign.json", "campaign output JSON path")
	campaignWorkers := flag.String("campaign.workers", "", "comma-separated worker counts for the campaign cold-cache scaling series (e.g. \"1,2,4\"); empty skips it")
	clusterBench := flag.Bool("cluster", false, "benchmark the sharded fleet (coordinator + in-process nodes) instead of the execution engine")
	clusterNodes := flag.Int("cluster.nodes", 3, "fleet size for -cluster")
	clusterStreams := flag.Int("cluster.streams", 64, "concurrent job streams for -cluster")
	clusterJobs := flag.Int("cluster.jobs", 128, "jobs per pass for -cluster")
	clusterN := flag.Int("cluster.n", 60_000, "per-job trace length for -cluster")
	clusterOut := flag.String("cluster.o", "BENCH_cluster.json", "cluster output JSON path")
	fastmodelBench := flag.Bool("fastmodel", false, "calibrate the fast interval model and measure the explore filter instead of the execution engine")
	fastmodelN := flag.Int("fastmodel.n", 10_000, "fast-model calibration trace length in instructions")
	fastmodelOut := flag.String("fastmodel.o", "BENCH_fastmodel.json", "fast-model output JSON path")
	statecostBench := flag.Bool("statecost", false, "sweep the kill-refork state-transfer warm-up cost instead of benchmarking the execution engine")
	statecostN := flag.Int("statecost.n", 200_000, "state-transfer sweep trace length in instructions")
	statecostOut := flag.String("statecost.o", "BENCH_statecost.json", "state-transfer sweep output JSON path")
	leaderboardBench := flag.Bool("leaderboard", false, "race every registered predictor x replacement x prefetcher combination over the workload suite instead of benchmarking the execution engine")
	leaderboardN := flag.Int("leaderboard.n", 60_000, "leaderboard trace length in instructions")
	leaderboardOut := flag.String("leaderboard.o", "BENCH_leaderboard.json", "leaderboard output JSON path")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the benchmark run to this path (source for cmd/bench/default.pgo)")
	workers := flag.String("workers", "", "comma-separated worker counts for the multi-core scaling leg (e.g. \"1,2,4\"); empty skips it")
	contestWorkers := flag.String("contest.workers", "", "comma-separated worker counts for the contest-batch scaling leg (ContestRunBatch); empty skips it")
	flag.Parse()
	ctx, stop := cmdutil.SignalContext()
	defer stop()
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				log.Fatalf("cpuprofile: %v", err)
			}
		}()
	}
	if *campaign {
		runCampaignBench(ctx, *campaignN, *campaignWorkers, *campaignOut)
		return
	}
	if *clusterBench {
		runClusterBench(ctx, *clusterNodes, *clusterStreams, *clusterJobs, *clusterN, *clusterOut)
		return
	}
	if *fastmodelBench {
		runFastmodelBench(ctx, *fastmodelN, *fastmodelOut)
		return
	}
	if *statecostBench {
		runStatecostBench(ctx, *statecostN, *statecostOut)
		return
	}
	if *leaderboardBench {
		runLeaderboardBench(ctx, *leaderboardN, *leaderboardOut)
		return
	}
	if *n <= 0 {
		log.Fatalf("-n must be positive, got %d", *n)
	}
	if *repeat <= 0 {
		log.Fatalf("-repeat must be positive, got %d", *repeat)
	}

	scenarios := []scenario{
		singleScenario(ctx, "mcf", "mcf", *n),
		singleScenario(ctx, "gcc", "gcc", *n),
		singleScenario(ctx, "crafty", "crafty", *n),
		singleScenario(ctx, "twolf", "twolf", *n),
		contestScenario(ctx, "twolf", []string{"twolf", "vpr"}, *n),
		contestScenario(ctx, "mcf", []string{"mcf", "gcc"}, *n),
		contestScenario(ctx, "gcc", []string{"gcc", "mcf", "bzip", "crafty"}, *n),
	}

	rep := report{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Insts:     *n,
		Repeat:    *repeat,
		NumCPU:    runtime.NumCPU(),
	}
	logSpeedup := 0.0
	speedups := 0
	fmt.Printf("%-24s %12s %12s %9s %12s %12s\n", "scenario", "event MIPS", "naive MIPS", "speedup", "verify cost", "record cost")
	for _, s := range scenarios {
		fast, err := timeScenario(s, false, *repeat, *n)
		if err != nil {
			log.Fatalf("%s: %v", s.name, err)
		}
		res := scenarioResult{Name: s.name, Insts: *n, EventDriven: fast}
		verifyCol := "-"
		if *verify {
			v, err := timeFn(s.runVerified, *repeat, *n)
			if err != nil {
				log.Fatalf("%s (verified): %v", s.name, err)
			}
			res.Verified = &v
			res.VerifyOverhead = v.WallSeconds / fast.WallSeconds
			verifyCol = fmt.Sprintf("%.2fx", res.VerifyOverhead)
		}
		recordCol := "-"
		if *record {
			r, err := timeFn(s.runRecorded, *repeat, *n)
			if err != nil {
				log.Fatalf("%s (recorded): %v", s.name, err)
			}
			res.Recorded = &r
			res.RecordOverhead = r.WallSeconds / fast.WallSeconds
			recordCol = fmt.Sprintf("%.2fx", res.RecordOverhead)
		}
		if !*fastOnly {
			slow, err := timeScenario(s, true, *repeat, *n)
			if err != nil {
				log.Fatalf("%s (single-step): %v", s.name, err)
			}
			res.SingleStep = &slow
			res.Speedup = slow.WallSeconds / fast.WallSeconds
			logSpeedup += math.Log(res.Speedup)
			speedups++
			fmt.Printf("%-24s %12.2f %12.2f %8.2fx %12s %12s\n", s.name, fast.MIPS, slow.MIPS, res.Speedup, verifyCol, recordCol)
		} else {
			fmt.Printf("%-24s %12.2f %12s %9s %12s %12s\n", s.name, fast.MIPS, "-", "-", verifyCol, recordCol)
		}
		rep.Scenarios = append(rep.Scenarios, res)
	}
	if speedups > 0 {
		rep.GeomeanSpeedup = math.Exp(logSpeedup / float64(speedups))
		fmt.Printf("%-24s %12s %12s %8.2fx\n", "geomean", "", "", rep.GeomeanSpeedup)
	}
	if *workers != "" {
		counts, err := parseWorkerList(*workers)
		if err != nil {
			log.Fatalf("-workers: %v", err)
		}
		rep.Scaling = runScalingLeg(ctx, counts, *n, *repeat)
	}
	if *contestWorkers != "" {
		counts, err := parseWorkerList(*contestWorkers)
		if err != nil {
			log.Fatalf("-contest.workers: %v", err)
		}
		rep.ContestScaling = runContestScalingLeg(ctx, counts, *n, *repeat)
	}
	if *merge {
		if data, err := os.ReadFile(*out); err == nil {
			var prev report
			if err := json.Unmarshal(data, &prev); err != nil {
				log.Fatalf("merge %s: %v", *out, err)
			}
			mergeReport(&rep, prev)
		}
	}
	if *baseline != "" {
		cmp, err := compareBaseline(*baseline, rep.Scenarios)
		if err != nil {
			log.Fatalf("baseline: %v", err)
		}
		rep.Baseline = cmp
		fmt.Printf("checker-off vs %s: geomean %.3fx\n", *baseline, cmp.GeomeanEventRatio)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := cmdutil.WriteFileAtomic(*out, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *out)
}
