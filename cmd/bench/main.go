// Command bench measures simulation throughput of the execution engine —
// simulated instructions per wall-second (MIPS) — for the event-driven
// fast-forward path and the reference single-step path, and emits the
// results as BENCH_engine.json so the perf trajectory is tracked across
// PRs. With -campaign it instead measures the campaign engine: the full
// figures experiment sweep cold-cache with one worker, cold-cache with all
// workers, and warm-cache, emitting BENCH_campaign.json.
//
// Usage:
//
//	bench                      # default scenarios at 200k instructions
//	bench -n 1000000           # longer traces
//	bench -repeat 5            # best-of-5 timing
//	bench -o out.json          # output path (default BENCH_engine.json)
//	bench -fast-only           # skip the slow single-step reference
//	bench -campaign            # campaign benchmark -> BENCH_campaign.json
//	bench -campaign -campaign.n 100000
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"time"

	"archcontest"
)

type timing struct {
	WallSeconds float64 `json:"wall_seconds"`
	MIPS        float64 `json:"mips"`
}

type scenarioResult struct {
	Name        string  `json:"name"`
	Insts       int     `json:"insts"`
	EventDriven timing  `json:"event_driven"`
	SingleStep  *timing `json:"single_step,omitempty"`
	Speedup     float64 `json:"speedup,omitempty"`
}

type report struct {
	Generated      string           `json:"generated"`
	Insts          int              `json:"insts"`
	Repeat         int              `json:"repeat"`
	Scenarios      []scenarioResult `json:"scenarios"`
	GeomeanSpeedup float64          `json:"geomean_speedup,omitempty"`
}

type scenario struct {
	name string
	run  func(singleStep bool) error
}

func singleScenario(bench, core string, n int) scenario {
	tr := archcontest.MustGenerateTrace(bench, n)
	cfg := archcontest.MustPaletteCore(core)
	return scenario{
		name: fmt.Sprintf("single/%s-on-%s", bench, core),
		run: func(singleStep bool) error {
			r, err := archcontest.Run(cfg, tr, archcontest.RunOptions{SingleStep: singleStep})
			if err != nil {
				return err
			}
			if r.Insts != int64(tr.Len()) {
				return fmt.Errorf("incomplete run: %d of %d", r.Insts, tr.Len())
			}
			return nil
		},
	}
}

func contestScenario(bench string, cores []string, n int) scenario {
	tr := archcontest.MustGenerateTrace(bench, n)
	cfgs := make([]archcontest.CoreConfig, len(cores))
	for i, c := range cores {
		cfgs[i] = archcontest.MustPaletteCore(c)
	}
	name := fmt.Sprintf("contest%d/%s", len(cores), bench)
	return scenario{
		name: name,
		run: func(singleStep bool) error {
			r, err := archcontest.ContestRun(cfgs, tr, archcontest.ContestOptions{SingleStep: singleStep})
			if err != nil {
				return err
			}
			if r.Insts != int64(tr.Len()) {
				return fmt.Errorf("incomplete run: %d of %d", r.Insts, tr.Len())
			}
			return nil
		},
	}
}

// time measures the best wall-clock time of `repeat` runs.
func timeScenario(s scenario, singleStep bool, repeat, n int) (timing, error) {
	best := math.MaxFloat64
	for i := 0; i < repeat; i++ {
		start := time.Now()
		if err := s.run(singleStep); err != nil {
			return timing{}, err
		}
		if sec := time.Since(start).Seconds(); sec < best {
			best = sec
		}
	}
	return timing{WallSeconds: best, MIPS: float64(n) / best / 1e6}, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench: ")
	n := flag.Int("n", 200_000, "trace length in instructions")
	repeat := flag.Int("repeat", 3, "runs per scenario (best time wins)")
	out := flag.String("o", "BENCH_engine.json", "output JSON path")
	fastOnly := flag.Bool("fast-only", false, "skip the single-step reference timings")
	campaign := flag.Bool("campaign", false, "benchmark the campaign engine instead of the execution engine")
	campaignN := flag.Int("campaign.n", 60_000, "campaign trace length in instructions")
	campaignOut := flag.String("campaign.o", "BENCH_campaign.json", "campaign output JSON path")
	flag.Parse()
	if *campaign {
		runCampaignBench(*campaignN, *campaignOut)
		return
	}
	if *n <= 0 {
		log.Fatalf("-n must be positive, got %d", *n)
	}
	if *repeat <= 0 {
		log.Fatalf("-repeat must be positive, got %d", *repeat)
	}

	scenarios := []scenario{
		singleScenario("mcf", "mcf", *n),
		singleScenario("gcc", "gcc", *n),
		singleScenario("crafty", "crafty", *n),
		singleScenario("twolf", "twolf", *n),
		contestScenario("twolf", []string{"twolf", "vpr"}, *n),
		contestScenario("mcf", []string{"mcf", "gcc"}, *n),
		contestScenario("gcc", []string{"gcc", "mcf", "bzip", "crafty"}, *n),
	}

	rep := report{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Insts:     *n,
		Repeat:    *repeat,
	}
	logSpeedup := 0.0
	speedups := 0
	fmt.Printf("%-24s %12s %12s %9s\n", "scenario", "event MIPS", "naive MIPS", "speedup")
	for _, s := range scenarios {
		fast, err := timeScenario(s, false, *repeat, *n)
		if err != nil {
			log.Fatalf("%s: %v", s.name, err)
		}
		res := scenarioResult{Name: s.name, Insts: *n, EventDriven: fast}
		if !*fastOnly {
			slow, err := timeScenario(s, true, *repeat, *n)
			if err != nil {
				log.Fatalf("%s (single-step): %v", s.name, err)
			}
			res.SingleStep = &slow
			res.Speedup = slow.WallSeconds / fast.WallSeconds
			logSpeedup += math.Log(res.Speedup)
			speedups++
			fmt.Printf("%-24s %12.2f %12.2f %8.2fx\n", s.name, fast.MIPS, slow.MIPS, res.Speedup)
		} else {
			fmt.Printf("%-24s %12.2f %12s %9s\n", s.name, fast.MIPS, "-", "-")
		}
		rep.Scenarios = append(rep.Scenarios, res)
	}
	if speedups > 0 {
		rep.GeomeanSpeedup = math.Exp(logSpeedup / float64(speedups))
		fmt.Printf("%-24s %12s %12s %8.2fx\n", "geomean", "", "", rep.GeomeanSpeedup)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *out)
}
