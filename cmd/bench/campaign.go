package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"archcontest/internal/cmdutil"
	"archcontest/internal/experiments"
	"archcontest/internal/resultcache"
)

// campaignLeg is one measured configuration of the figures campaign.
type campaignLeg struct {
	Name        string  `json:"name"`
	Workers     int     `json:"workers"`
	WallSeconds float64 `json:"wall_seconds"`
	Simulations int64   `json:"simulations"`
	Contests    int64   `json:"contests"`
	CacheHits   int64   `json:"cache_hits"`
	CacheMisses int64   `json:"cache_misses"`
	// Scaling is the cold-campaign wall-time speedup of this worker count
	// over the workers=1 row of the same series (scaling rows only).
	Scaling float64 `json:"scaling,omitempty"`
	// ContestBatch is the Lab's contest-batch width for this leg (scaling
	// rows only): >1 means cache-missing contests of a candidate fan-out
	// were interleaved that many per leaf, 1 means contest batching off.
	ContestBatch int `json:"contest_batch,omitempty"`
}

type campaignReport struct {
	Generated   string      `json:"generated"`
	Insts       int         `json:"insts"`
	NumCPU      int         `json:"num_cpu"`
	Experiments []string    `json:"experiments"`
	ColdSingle  campaignLeg `json:"cold_single"`
	// ColdWorkers is the per-worker-count cold-cache series (see
	// -campaign.workers): each row runs the full sweep against a fresh
	// cache with that many workers, and Scaling reports its wall-time
	// speedup over the workers=1 row. Interpret it against NumCPU — a
	// single-CPU runner honestly bounds the series at ~1.0x.
	ColdWorkers []campaignLeg `json:"cold_workers,omitempty"`
	// ColdWorkersNoBatch repeats the series with contest batching off
	// (ContestBatch=1), the workers x contest-batch on/off grid: comparing
	// the two series isolates what interleaved contest leaves contribute
	// beyond plain worker parallelism. Same NumCPU caveat.
	ColdWorkersNoBatch []campaignLeg `json:"cold_workers_nobatch,omitempty"`
	ColdParallel       campaignLeg   `json:"cold_parallel"`
	WarmParallel       campaignLeg   `json:"warm_parallel"`
	ParallelSpeedup    float64       `json:"parallel_speedup"`
	WarmSpeedup        float64       `json:"warm_speedup"`
}

// campaignLegRun executes the full figures experiment sweep once on a lab
// with the given parallelism, contest-batch width (0 = Lab default), and
// cache, and reports what it measured.
func campaignLegRun(ctx context.Context, name string, n, workers, contestBatch int, cache *resultcache.Cache) campaignLeg {
	lab := experiments.NewLab(experiments.Config{N: n, Parallelism: workers, ContestBatch: contestBatch, Cache: cache})
	start := time.Now()
	for _, id := range experiments.RegistryOrder {
		if _, err := experiments.Registry[id](ctx, lab); err != nil {
			log.Fatalf("campaign %s: %s: %v", name, id, err)
		}
	}
	wall := time.Since(start).Seconds()
	st := lab.CampaignStats()
	leg := campaignLeg{
		Name:        name,
		Workers:     workers,
		WallSeconds: wall,
		Simulations: st.Simulations,
		Contests:    st.Contests,
		CacheHits:   st.CacheHits,
		CacheMisses: st.CacheMisses,
	}
	fmt.Printf("%-14s %2d workers  %8.2fs  %4d sims %4d contests  %4d cache hits\n",
		name, workers, wall, leg.Simulations, leg.Contests, leg.CacheHits)
	return leg
}

// runCampaignBench measures the campaign engine on the figures sweep:
// cold-cache single-worker, an optional per-worker-count cold series, a
// cold-cache all-workers leg (fresh cache), then a warm-cache re-run
// against that leg's cache directory.
func runCampaignBench(ctx context.Context, n int, workerList, out string) {
	if n <= 0 {
		log.Fatalf("-campaign.n must be positive, got %d", n)
	}
	workers := runtime.NumCPU()
	var workerCounts []int
	if workerList != "" {
		var err error
		if workerCounts, err = parseWorkerList(workerList); err != nil {
			log.Fatalf("-campaign.workers: %v", err)
		}
	}

	dirSingle, err := os.MkdirTemp("", "archcontest-campaign-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dirSingle)
	dirParallel, err := os.MkdirTemp("", "archcontest-campaign-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dirParallel)
	open := func(dir string) *resultcache.Cache {
		c, err := resultcache.Open(dir, resultcache.Options{})
		if err != nil {
			log.Fatal(err)
		}
		return c
	}

	rep := campaignReport{
		Generated:   time.Now().UTC().Format(time.RFC3339),
		Insts:       n,
		NumCPU:      runtime.NumCPU(),
		Experiments: experiments.RegistryOrder,
	}
	rep.ColdSingle = campaignLegRun(ctx, "cold/single", n, 1, 0, open(dirSingle))
	// The workers x contest-batch on/off grid: one cold series with the
	// Lab's default contest batching, one with batching off.
	series := func(tag string, contestBatch int, dst *[]campaignLeg) {
		var baseWall float64
		for _, w := range workerCounts {
			dir, err := os.MkdirTemp("", "archcontest-campaign-*")
			if err != nil {
				log.Fatal(err)
			}
			leg := campaignLegRun(ctx, fmt.Sprintf("cold/workers=%d%s", w, tag), n, w, contestBatch, open(dir))
			os.RemoveAll(dir)
			if contestBatch == 0 {
				leg.ContestBatch = 2 // the Lab default, recorded explicitly
			} else {
				leg.ContestBatch = contestBatch
			}
			if baseWall == 0 {
				baseWall = leg.WallSeconds
			}
			if baseWall > 0 && leg.WallSeconds > 0 {
				leg.Scaling = baseWall / leg.WallSeconds
			}
			*dst = append(*dst, leg)
		}
	}
	series("", 0, &rep.ColdWorkers)
	if len(workerCounts) > 0 {
		series("/nobatch", 1, &rep.ColdWorkersNoBatch)
	}
	rep.ColdParallel = campaignLegRun(ctx, "cold/parallel", n, workers, 0, open(dirParallel))
	rep.WarmParallel = campaignLegRun(ctx, "warm/parallel", n, workers, 0, open(dirParallel))
	if rep.ColdParallel.WallSeconds > 0 {
		rep.ParallelSpeedup = rep.ColdSingle.WallSeconds / rep.ColdParallel.WallSeconds
	}
	if rep.WarmParallel.WallSeconds > 0 {
		rep.WarmSpeedup = rep.ColdParallel.WallSeconds / rep.WarmParallel.WallSeconds
	}
	fmt.Printf("%-14s cold parallel %.2fx over single, warm %.2fx over cold\n",
		"speedups", rep.ParallelSpeedup, rep.WarmSpeedup)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := cmdutil.WriteFileAtomic(out, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", out)
}
