package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"archcontest/internal/cmdutil"
	"archcontest/internal/experiments"
	"archcontest/internal/resultcache"
)

// campaignLeg is one measured configuration of the figures campaign.
type campaignLeg struct {
	Name        string  `json:"name"`
	Workers     int     `json:"workers"`
	WallSeconds float64 `json:"wall_seconds"`
	Simulations int64   `json:"simulations"`
	Contests    int64   `json:"contests"`
	CacheHits   int64   `json:"cache_hits"`
	CacheMisses int64   `json:"cache_misses"`
}

type campaignReport struct {
	Generated       string      `json:"generated"`
	Insts           int         `json:"insts"`
	Experiments     []string    `json:"experiments"`
	ColdSingle      campaignLeg `json:"cold_single"`
	ColdParallel    campaignLeg `json:"cold_parallel"`
	WarmParallel    campaignLeg `json:"warm_parallel"`
	ParallelSpeedup float64     `json:"parallel_speedup"`
	WarmSpeedup     float64     `json:"warm_speedup"`
}

// campaignLegRun executes the full figures experiment sweep once on a lab
// with the given parallelism and cache, and reports what it measured.
func campaignLegRun(ctx context.Context, name string, n, workers int, cache *resultcache.Cache) campaignLeg {
	lab := experiments.NewLab(experiments.Config{N: n, Parallelism: workers, Cache: cache})
	start := time.Now()
	for _, id := range experiments.RegistryOrder {
		if _, err := experiments.Registry[id](ctx, lab); err != nil {
			log.Fatalf("campaign %s: %s: %v", name, id, err)
		}
	}
	wall := time.Since(start).Seconds()
	st := lab.CampaignStats()
	leg := campaignLeg{
		Name:        name,
		Workers:     workers,
		WallSeconds: wall,
		Simulations: st.Simulations,
		Contests:    st.Contests,
		CacheHits:   st.CacheHits,
		CacheMisses: st.CacheMisses,
	}
	fmt.Printf("%-14s %2d workers  %8.2fs  %4d sims %4d contests  %4d cache hits\n",
		name, workers, wall, leg.Simulations, leg.Contests, leg.CacheHits)
	return leg
}

// runCampaignBench measures the campaign engine on the figures sweep:
// cold-cache single-worker, cold-cache all-workers (fresh cache), then a
// warm-cache re-run against the second leg's cache directory.
func runCampaignBench(ctx context.Context, n int, out string) {
	if n <= 0 {
		log.Fatalf("-campaign.n must be positive, got %d", n)
	}
	workers := runtime.NumCPU()

	dirSingle, err := os.MkdirTemp("", "archcontest-campaign-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dirSingle)
	dirParallel, err := os.MkdirTemp("", "archcontest-campaign-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dirParallel)
	open := func(dir string) *resultcache.Cache {
		c, err := resultcache.Open(dir, resultcache.Options{})
		if err != nil {
			log.Fatal(err)
		}
		return c
	}

	rep := campaignReport{
		Generated:   time.Now().UTC().Format(time.RFC3339),
		Insts:       n,
		Experiments: experiments.RegistryOrder,
	}
	rep.ColdSingle = campaignLegRun(ctx, "cold/single", n, 1, open(dirSingle))
	rep.ColdParallel = campaignLegRun(ctx, "cold/parallel", n, workers, open(dirParallel))
	rep.WarmParallel = campaignLegRun(ctx, "warm/parallel", n, workers, open(dirParallel))
	if rep.ColdParallel.WallSeconds > 0 {
		rep.ParallelSpeedup = rep.ColdSingle.WallSeconds / rep.ColdParallel.WallSeconds
	}
	if rep.WarmParallel.WallSeconds > 0 {
		rep.WarmSpeedup = rep.ColdParallel.WallSeconds / rep.WarmParallel.WallSeconds
	}
	fmt.Printf("%-14s cold parallel %.2fx over single, warm %.2fx over cold\n",
		"speedups", rep.ParallelSpeedup, rep.WarmSpeedup)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := cmdutil.WriteFileAtomic(out, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", out)
}
