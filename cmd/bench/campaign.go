package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"archcontest/internal/cmdutil"
	"archcontest/internal/experiments"
	"archcontest/internal/resultcache"
)

// campaignLeg is one measured configuration of the figures campaign.
type campaignLeg struct {
	Name        string  `json:"name"`
	Workers     int     `json:"workers"`
	WallSeconds float64 `json:"wall_seconds"`
	Simulations int64   `json:"simulations"`
	Contests    int64   `json:"contests"`
	CacheHits   int64   `json:"cache_hits"`
	CacheMisses int64   `json:"cache_misses"`
	// Scaling is the cold-campaign wall-time speedup of this worker count
	// over the workers=1 row of the same series (scaling rows only).
	Scaling float64 `json:"scaling,omitempty"`
}

type campaignReport struct {
	Generated   string      `json:"generated"`
	Insts       int         `json:"insts"`
	NumCPU      int         `json:"num_cpu"`
	Experiments []string    `json:"experiments"`
	ColdSingle  campaignLeg `json:"cold_single"`
	// ColdWorkers is the per-worker-count cold-cache series (see
	// -campaign.workers): each row runs the full sweep against a fresh
	// cache with that many workers, and Scaling reports its wall-time
	// speedup over the workers=1 row. Interpret it against NumCPU — a
	// single-CPU runner honestly bounds the series at ~1.0x.
	ColdWorkers     []campaignLeg `json:"cold_workers,omitempty"`
	ColdParallel    campaignLeg   `json:"cold_parallel"`
	WarmParallel    campaignLeg   `json:"warm_parallel"`
	ParallelSpeedup float64       `json:"parallel_speedup"`
	WarmSpeedup     float64       `json:"warm_speedup"`
}

// campaignLegRun executes the full figures experiment sweep once on a lab
// with the given parallelism and cache, and reports what it measured.
func campaignLegRun(ctx context.Context, name string, n, workers int, cache *resultcache.Cache) campaignLeg {
	lab := experiments.NewLab(experiments.Config{N: n, Parallelism: workers, Cache: cache})
	start := time.Now()
	for _, id := range experiments.RegistryOrder {
		if _, err := experiments.Registry[id](ctx, lab); err != nil {
			log.Fatalf("campaign %s: %s: %v", name, id, err)
		}
	}
	wall := time.Since(start).Seconds()
	st := lab.CampaignStats()
	leg := campaignLeg{
		Name:        name,
		Workers:     workers,
		WallSeconds: wall,
		Simulations: st.Simulations,
		Contests:    st.Contests,
		CacheHits:   st.CacheHits,
		CacheMisses: st.CacheMisses,
	}
	fmt.Printf("%-14s %2d workers  %8.2fs  %4d sims %4d contests  %4d cache hits\n",
		name, workers, wall, leg.Simulations, leg.Contests, leg.CacheHits)
	return leg
}

// runCampaignBench measures the campaign engine on the figures sweep:
// cold-cache single-worker, an optional per-worker-count cold series, a
// cold-cache all-workers leg (fresh cache), then a warm-cache re-run
// against that leg's cache directory.
func runCampaignBench(ctx context.Context, n int, workerList, out string) {
	if n <= 0 {
		log.Fatalf("-campaign.n must be positive, got %d", n)
	}
	workers := runtime.NumCPU()
	var workerCounts []int
	if workerList != "" {
		var err error
		if workerCounts, err = parseWorkerList(workerList); err != nil {
			log.Fatalf("-campaign.workers: %v", err)
		}
	}

	dirSingle, err := os.MkdirTemp("", "archcontest-campaign-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dirSingle)
	dirParallel, err := os.MkdirTemp("", "archcontest-campaign-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dirParallel)
	open := func(dir string) *resultcache.Cache {
		c, err := resultcache.Open(dir, resultcache.Options{})
		if err != nil {
			log.Fatal(err)
		}
		return c
	}

	rep := campaignReport{
		Generated:   time.Now().UTC().Format(time.RFC3339),
		Insts:       n,
		NumCPU:      runtime.NumCPU(),
		Experiments: experiments.RegistryOrder,
	}
	rep.ColdSingle = campaignLegRun(ctx, "cold/single", n, 1, open(dirSingle))
	var baseWall float64
	for _, w := range workerCounts {
		dir, err := os.MkdirTemp("", "archcontest-campaign-*")
		if err != nil {
			log.Fatal(err)
		}
		leg := campaignLegRun(ctx, fmt.Sprintf("cold/workers=%d", w), n, w, open(dir))
		os.RemoveAll(dir)
		if baseWall == 0 {
			baseWall = leg.WallSeconds
		}
		if baseWall > 0 && leg.WallSeconds > 0 {
			leg.Scaling = baseWall / leg.WallSeconds
		}
		rep.ColdWorkers = append(rep.ColdWorkers, leg)
	}
	rep.ColdParallel = campaignLegRun(ctx, "cold/parallel", n, workers, open(dirParallel))
	rep.WarmParallel = campaignLegRun(ctx, "warm/parallel", n, workers, open(dirParallel))
	if rep.ColdParallel.WallSeconds > 0 {
		rep.ParallelSpeedup = rep.ColdSingle.WallSeconds / rep.ColdParallel.WallSeconds
	}
	if rep.WarmParallel.WallSeconds > 0 {
		rep.WarmSpeedup = rep.ColdParallel.WallSeconds / rep.WarmParallel.WallSeconds
	}
	fmt.Printf("%-14s cold parallel %.2fx over single, warm %.2fx over cold\n",
		"speedups", rep.ParallelSpeedup, rep.WarmSpeedup)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := cmdutil.WriteFileAtomic(out, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", out)
}
