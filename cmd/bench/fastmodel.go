package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"runtime"
	"time"

	"archcontest/internal/cmdutil"
	"archcontest/internal/explore"
	"archcontest/internal/fastmodel"
	"archcontest/internal/workload"
)

// filterLeg is one explore run measured with the fast filter off and on:
// the detailed-simulation cut the filter buys and whether the walk's
// output survived it.
type filterLeg struct {
	Bench       string  `json:"bench"`
	Seed        uint64  `json:"seed"`
	Steps       int     `json:"steps"`
	Lookahead   int     `json:"lookahead"`
	DetailedOff int     `json:"detailed_off"`
	DetailedOn  int     `json:"detailed_on"`
	Filtered    int     `json:"filtered"`
	Cut         float64 `json:"cut"`
	BestIPTOff  float64 `json:"best_ipt_off"`
	BestIPTOn   float64 `json:"best_ipt_on"`
	// BestUnchanged reports whether the filtered walk produced the same
	// best configuration and IPT as the unfiltered walk.
	BestUnchanged bool `json:"best_unchanged"`
}

type fastmodelReport struct {
	Generated string `json:"generated"`
	Insts     int    `json:"insts"`
	NumCPU    int    `json:"num_cpu"`
	// Calibration is the fast-vs-detailed divergence over the full
	// workload suite and palette at Insts instructions.
	Calibration fastmodel.Calibration `json:"calibration"`
	// Filter measures the filter on explore walks.
	Filter []filterLeg `json:"filter"`
}

// runFastmodelBench calibrates the fast model against the detailed engine
// and measures the explore filter's detailed-simulation cut.
func runFastmodelBench(ctx context.Context, n int, out string) {
	if n <= 0 {
		log.Fatalf("-fastmodel.n must be positive, got %d", n)
	}
	rep := fastmodelReport{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Insts:     n,
		NumCPU:    runtime.NumCPU(),
	}
	cal, err := fastmodel.Calibrate(ctx, nil, nil, n)
	if err != nil {
		log.Fatalf("fastmodel: calibrate: %v", err)
	}
	rep.Calibration = cal
	fmt.Printf("calibration over %d rows: mean |rel| %.3f, max |rel| %.3f, max spread %.3f, rank agreement %.3f\n",
		len(cal.Rows), cal.MeanAbsRelError, cal.MaxAbsRelError, cal.MaxSpread, cal.RankAgreement)

	const steps, lookahead = 60, 8
	for _, bench := range []string{"gcc", "mcf", "twolf"} {
		for _, seed := range []uint64{1, 7} {
			p, err := workload.ProfileFor(bench)
			if err != nil {
				log.Fatalf("fastmodel: %v", err)
			}
			tr, err := workload.Generate(p, n)
			if err != nil {
				log.Fatalf("fastmodel: %v", err)
			}
			opts := explore.Options{Seed: seed, Steps: steps, Lookahead: lookahead}
			off, err := explore.Customize(ctx, tr, opts)
			if err != nil {
				log.Fatalf("fastmodel: explore %s: %v", bench, err)
			}
			opts.FastFilter = true
			on, err := explore.Customize(ctx, tr, opts)
			if err != nil {
				log.Fatalf("fastmodel: explore %s: %v", bench, err)
			}
			leg := filterLeg{
				Bench: bench, Seed: seed, Steps: steps, Lookahead: lookahead,
				DetailedOff: off.Detailed, DetailedOn: on.Detailed, Filtered: on.Filtered,
				BestIPTOff: off.BestIPT, BestIPTOn: on.BestIPT,
				BestUnchanged: on.Best.String() == off.Best.String() && on.BestIPT == off.BestIPT,
			}
			if on.Detailed > 0 {
				leg.Cut = float64(off.Detailed) / float64(on.Detailed)
			}
			rep.Filter = append(rep.Filter, leg)
			fmt.Printf("filter %-7s seed=%d  detailed %4d -> %4d (%.2fx cut, %d filtered), best unchanged: %v\n",
				bench, seed, leg.DetailedOff, leg.DetailedOn, leg.Cut, leg.Filtered, leg.BestUnchanged)
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := cmdutil.WriteFileAtomic(out, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", out)
}
