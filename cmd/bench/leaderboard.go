package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"runtime"
	"time"

	"archcontest/internal/cmdutil"
	"archcontest/internal/experiments"
)

// leaderboardReport is BENCH_leaderboard.json: the full-suite championship
// of every registered predictor x replacement policy x prefetcher
// combination, ranked per workload and overall, with each workload's top
// two combos contested head-to-head.
type leaderboardReport struct {
	Generated string `json:"generated"`
	Insts     int    `json:"insts"`
	NumCPU    int    `json:"num_cpu"`
	// Combos is the size of the cross-product actually raced.
	Combos int `json:"combos"`
	experiments.LeaderboardReport
}

// runLeaderboardBench races the registered component cross-product over the
// whole workload suite and writes the ranking report.
func runLeaderboardBench(ctx context.Context, n int, out string) {
	if n <= 0 {
		log.Fatalf("-leaderboard.n must be positive, got %d", n)
	}
	l := experiments.NewLab(experiments.Config{N: n})
	start := time.Now()
	rep, err := experiments.LeaderboardRun(ctx, l, l.Benchmarks())
	if err != nil {
		log.Fatalf("leaderboard: %v", err)
	}
	elapsed := time.Since(start)

	fmt.Printf("%-28s %14s %6s\n", "combo", "geomean (norm)", "wins")
	for i, s := range rep.Standings {
		if i >= 10 {
			fmt.Printf("... %d more combos\n", len(rep.Standings)-i)
			break
		}
		fmt.Printf("%-28s %14.3f %6d\n", s.Name, s.Geomean, s.Wins)
	}
	for _, h := range rep.HeadToHead {
		fmt.Printf("head-to-head %-8s %s vs %s: contest %.2f IPT (%+.1f%% vs best single, %d lead changes)\n",
			h.Bench, h.A, h.B, h.ContestIPT, 100*h.Speedup, h.LeadChanges)
	}
	stats := l.CampaignStats()
	fmt.Printf("raced %d combos over %d workloads in %.1fs (%d simulations, %d contests)\n",
		len(rep.Standings), len(rep.Benches), elapsed.Seconds(), stats.Simulations, stats.Contests)

	full := leaderboardReport{
		Generated:         time.Now().UTC().Format(time.RFC3339),
		Insts:             n,
		NumCPU:            runtime.NumCPU(),
		Combos:            len(rep.Standings),
		LeaderboardReport: *rep,
	}
	data, err := json.MarshalIndent(full, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := cmdutil.WriteFileAtomic(out, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", out)
}
