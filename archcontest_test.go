package archcontest

import (
	"context"
	"strings"
	"testing"
)

func TestFacadeBasics(t *testing.T) {
	if len(Benchmarks()) != 11 || len(PaletteNames()) != 11 || len(Palette()) != 11 {
		t.Fatal("registry sizes wrong")
	}
	if _, err := WorkloadFor("mcf"); err != nil {
		t.Error(err)
	}
	if _, err := WorkloadFor("eon"); err == nil {
		t.Error("eon accepted")
	}
	if _, err := PaletteCore("nope"); err == nil {
		t.Error("unknown core accepted")
	}
	if _, err := GenerateTrace("nope", 10); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestFacadeRunAndContest(t *testing.T) {
	tr, err := GenerateTrace("twolf", 20000)
	if err != nil {
		t.Fatal(err)
	}
	own := MustRun(MustPaletteCore("twolf"), tr)
	if own.IPT() <= 0 {
		t.Fatal("single run IPT")
	}
	res, err := ContestRun([]CoreConfig{
		MustPaletteCore("twolf"), MustPaletteCore("vpr"),
	}, tr, ContestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.IPT() < 0.9*own.IPT() {
		t.Errorf("contest IPT %.3f far below own core %.3f", res.IPT(), own.IPT())
	}
}

func TestFacadeExperiments(t *testing.T) {
	ids := Experiments()
	if len(ids) == 0 || ids[0] != "fig1" {
		t.Fatalf("experiment list %v", ids)
	}
	lab := NewLab(LabConfig{N: 15000})
	tab, err := RunExperiment(context.Background(), lab, "appendixA")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.String(), "Appendix A") {
		t.Error("table rendering")
	}
	if _, err := RunExperiment(context.Background(), lab, "figZZ"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestFacadeCustomize(t *testing.T) {
	if testing.Short() {
		t.Skip("annealing in short mode")
	}
	tr := MustGenerateTrace("gzip", 8000)
	res, err := CustomizeCore(context.Background(), tr, ExploreOptions{Seed: 2, Steps: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestIPT <= 0 {
		t.Error("exploration produced no result")
	}
}
