// Benchmarks: one per table and figure of the paper's evaluation, each
// printing the same rows/series the paper reports (at a reduced trace
// length — run cmd/figures for full-scale numbers), plus engine
// micro-benchmarks that report simulated instructions per wall-second.
package archcontest

import (
	"context"
	"fmt"
	"os"
	"sync"
	"testing"

	"archcontest/internal/experiments"
)

// benchN is the trace length used by the experiment benchmarks. Full-scale
// runs (cmd/figures, default 1M) take minutes; this keeps `go test -bench`
// in seconds per experiment while preserving every code path.
const benchN = 60_000

var (
	benchLabOnce sync.Once
	benchLab     *experiments.Lab
)

func sharedLab() *experiments.Lab {
	benchLabOnce.Do(func() {
		benchLab = experiments.NewLab(experiments.Config{N: benchN, CandidatePairs: 2})
	})
	return benchLab
}

var printedExperiments sync.Map

func benchmarkExperiment(b *testing.B, id string) {
	b.Helper()
	exp, ok := experiments.Registry[id]
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	lab := sharedLab()
	for i := 0; i < b.N; i++ {
		tab, err := exp(context.Background(), lab)
		if err != nil {
			b.Fatal(err)
		}
		if _, done := printedExperiments.LoadOrStore(id, true); !done {
			fmt.Fprintf(os.Stdout, "\n[n=%d instructions]\n", benchN)
			tab.Fprint(os.Stdout)
		}
	}
}

func BenchmarkFigure1(b *testing.B)  { benchmarkExperiment(b, "fig1") }
func BenchmarkFigure6(b *testing.B)  { benchmarkExperiment(b, "fig6") }
func BenchmarkFigure7(b *testing.B)  { benchmarkExperiment(b, "fig7") }
func BenchmarkFigure8(b *testing.B)  { benchmarkExperiment(b, "fig8") }
func BenchmarkTable1(b *testing.B)   { benchmarkExperiment(b, "table1") }
func BenchmarkFigure9(b *testing.B)  { benchmarkExperiment(b, "fig9") }
func BenchmarkFigure10(b *testing.B) { benchmarkExperiment(b, "fig10") }
func BenchmarkFigure11(b *testing.B) { benchmarkExperiment(b, "fig11") }
func BenchmarkFigure12(b *testing.B) { benchmarkExperiment(b, "fig12") }
func BenchmarkFigure13(b *testing.B) { benchmarkExperiment(b, "fig13") }
func BenchmarkAppendixA(b *testing.B) {
	benchmarkExperiment(b, "appendixA")
}
func BenchmarkAblationStoreQueue(b *testing.B) { benchmarkExperiment(b, "ablationQueue") }
func BenchmarkAblationMaxLag(b *testing.B)     { benchmarkExperiment(b, "ablationLag") }
func BenchmarkAblationTraining(b *testing.B)   { benchmarkExperiment(b, "ablationTrain") }
func BenchmarkMigrationBaseline(b *testing.B)  { benchmarkExperiment(b, "migration") }
func BenchmarkPower(b *testing.B)              { benchmarkExperiment(b, "power") }
func BenchmarkNWayContesting(b *testing.B)     { benchmarkExperiment(b, "nway") }
func BenchmarkExceptions(b *testing.B)         { benchmarkExperiment(b, "exceptions") }

// BenchmarkSingleCoreEngine measures raw simulation throughput of the
// out-of-order core model.
func BenchmarkSingleCoreEngine(b *testing.B) {
	tr := MustGenerateTrace("gcc", 100_000)
	cfg := MustPaletteCore("gcc")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := MustRun(cfg, tr)
		if r.Insts != int64(tr.Len()) {
			b.Fatal("incomplete run")
		}
	}
	b.ReportMetric(float64(tr.Len()*b.N)/b.Elapsed().Seconds()/1e6, "Msim-inst/s")
}

// BenchmarkContestEngine measures the throughput of 2-way contested
// co-simulation.
func BenchmarkContestEngine(b *testing.B) {
	tr := MustGenerateTrace("twolf", 100_000)
	pair := []CoreConfig{MustPaletteCore("twolf"), MustPaletteCore("vpr")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := ContestRun(pair, tr, ContestOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if r.Insts != int64(tr.Len()) {
			b.Fatal("incomplete run")
		}
	}
	b.ReportMetric(float64(tr.Len()*b.N)/b.Elapsed().Seconds()/1e6, "Msim-inst/s")
}

// BenchmarkTraceGeneration measures the synthetic workload generator.
func BenchmarkTraceGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr := MustGenerateTrace("mcf", 100_000)
		if tr.Len() != 100_000 {
			b.Fatal("short trace")
		}
	}
	b.ReportMetric(float64(100_000*b.N)/b.Elapsed().Seconds()/1e6, "Minst/s")
}
