// Package archcontest is a from-scratch Go reproduction of
// "Architectural Contesting" (Najaf-abadi & Rotenberg, HPCA 2009).
//
// Architectural contesting runs the same single-threaded program
// concurrently on several differently-customized cores of a heterogeneous
// chip multiprocessor. Each core broadcasts its retired instruction results
// on a global result bus; lagging cores consume those results to complete
// instructions without executing them, staying within a bounded lagging
// distance of the leader. When the workload behaviour changes — and it
// changes at granularities of a few hundred instructions — the core best
// suited to the new region takes the lead automatically, with no phase
// detector, no reconfiguration, and no migration.
//
// The package is the public facade over the internal simulators:
//
//   - Benchmarks and GenerateTrace: the eleven synthetic SPEC2000int
//     stand-in workloads (deterministic, phase-structured traces).
//   - Palette and PaletteCore: the paper's Appendix A benchmark-customized
//     core configurations.
//   - Run: single-core cycle-level execution of a trace.
//   - ContestRun: N-way contested execution.
//   - NewLab and the experiment registry: every table and figure of the
//     paper's evaluation, regenerated from the simulators.
//   - CustomizeCore: simulated-annealing design-space exploration (the
//     XpScalar stand-in).
//
// The quickest way in:
//
//	tr := archcontest.MustGenerateTrace("twolf", 500_000)
//	own := archcontest.MustRun(archcontest.MustPaletteCore("twolf"), tr)
//	pair := []archcontest.CoreConfig{
//		archcontest.MustPaletteCore("twolf"),
//		archcontest.MustPaletteCore("vpr"),
//	}
//	res, err := archcontest.ContestRun(pair, tr, archcontest.ContestOptions{})
//	// res.IPT() vs own.IPT(): the contesting speedup.
package archcontest

import (
	"context"
	"io"

	"archcontest/internal/config"
	"archcontest/internal/contest"
	"archcontest/internal/experiments"
	"archcontest/internal/explore"
	"archcontest/internal/migrate"
	"archcontest/internal/power"
	"archcontest/internal/resultcache"
	"archcontest/internal/sim"
	"archcontest/internal/trace"
	"archcontest/internal/workload"
)

// Trace is an immutable dynamic instruction stream (a benchmark's SimPoint
// stand-in).
type Trace = trace.Trace

// CoreConfig is a core's microarchitectural configuration along the paper's
// Appendix A axes.
type CoreConfig = config.CoreConfig

// RunResult is the outcome of a single-core run.
type RunResult = sim.Result

// RunOptions configures a single-core run.
type RunOptions = sim.RunOptions

// ContestOptions configures a contested run (core-to-core latency, lagging
// distance, store queue capacity, ...).
type ContestOptions = contest.Options

// ContestResult is the outcome of a contested run.
type ContestResult = contest.Result

// WorkloadProfile parameterizes a synthetic benchmark.
type WorkloadProfile = workload.Profile

// ExploreOptions configures the design-space exploration.
type ExploreOptions = explore.Options

// ExploreResult is the outcome of a design-space exploration.
type ExploreResult = explore.Result

// TemperOptions configures the parallel-tempering exploration mode.
type TemperOptions = explore.TemperingOptions

// ResultCache is the campaign engine's content-addressed persistent result
// store; pass one in LabConfig.Cache or ExploreOptions.Cache to make
// re-runs incremental.
type ResultCache = resultcache.Cache

// Lab caches the shared artifacts of an experiment campaign (traces, the
// benchmark-by-core matrix, switching studies, best contesting pairs).
type Lab = experiments.Lab

// LabConfig scales an experiment campaign.
type LabConfig = experiments.Config

// ExperimentTable is a rendered experiment result.
type ExperimentTable = experiments.Table

// Benchmarks lists the eleven benchmark names (SPEC2000int minus eon,
// exactly as the paper evaluates).
func Benchmarks() []string { return workload.Benchmarks() }

// WorkloadFor returns the named benchmark's synthetic profile.
func WorkloadFor(name string) (WorkloadProfile, error) { return workload.ProfileFor(name) }

// GenerateTrace synthesizes the benchmark's deterministic trace of n
// dynamic instructions.
func GenerateTrace(benchmark string, n int) (*Trace, error) {
	p, err := workload.ProfileFor(benchmark)
	if err != nil {
		return nil, err
	}
	return workload.Generate(p, n)
}

// MustGenerateTrace is GenerateTrace for known-good benchmark names.
func MustGenerateTrace(benchmark string, n int) *Trace {
	return workload.MustGenerate(benchmark, n)
}

// LoadTrace reads a trace previously serialized with Trace.WriteTo.
func LoadTrace(r io.Reader) (*Trace, error) { return trace.ReadFrom(r) }

// PaletteNames lists the benchmark-customized core names of Appendix A.
func PaletteNames() []string { return config.PaletteNames() }

// Palette returns all eleven benchmark-customized cores.
func Palette() []CoreConfig { return config.Palette() }

// PaletteCore returns the named benchmark's customized core.
func PaletteCore(name string) (CoreConfig, error) { return config.PaletteCore(name) }

// MustPaletteCore is PaletteCore for known-good names.
func MustPaletteCore(name string) CoreConfig { return config.MustPaletteCore(name) }

// Run executes a trace to completion on a single core.
func Run(cfg CoreConfig, tr *Trace, opts ...RunOptions) (RunResult, error) {
	var o RunOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	return sim.Run(cfg, tr, o)
}

// RunContext is Run with cooperative cancellation: the simulation polls
// ctx at amortized fast-forward boundaries and returns ctx.Err() once the
// context ends.
func RunContext(ctx context.Context, cfg CoreConfig, tr *Trace, opts ...RunOptions) (RunResult, error) {
	var o RunOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	return sim.RunContext(ctx, cfg, tr, o)
}

// MustRun is Run for known-good inputs.
func MustRun(cfg CoreConfig, tr *Trace) RunResult {
	return sim.MustRun(cfg, tr, sim.RunOptions{})
}

// BatchItem is one independent single-core job of a RunBatch call.
type BatchItem = sim.BatchItem

// BatchOptions configures RunBatch.
type BatchOptions = sim.BatchOptions

// RunBatch executes independent single-core jobs across worker goroutines,
// each worker advancing its group of cores in a cache-friendly interleave.
// Results are returned in item order, bit-identical to per-item Run calls.
func RunBatch(ctx context.Context, items []BatchItem, opts BatchOptions) ([]RunResult, error) {
	return sim.RunBatch(ctx, items, opts)
}

// ContestBatchItem is one independent contest of a ContestRunBatch call.
type ContestBatchItem = contest.BatchItem

// ContestBatchOptions configures ContestRunBatch.
type ContestBatchOptions = contest.BatchOptions

// ContestRunBatch executes independent contests across worker goroutines,
// each worker advancing its group of contest systems in a quantum
// round-robin. Results are returned in item order, bit-identical to
// per-item ContestRun calls.
func ContestRunBatch(ctx context.Context, items []ContestBatchItem, opts ContestBatchOptions) ([]ContestResult, error) {
	return contest.RunBatch(ctx, items, opts)
}

// ContestRun executes a trace on all the given cores in a contesting
// (leader-follower) arrangement and reports the system result.
func ContestRun(cfgs []CoreConfig, tr *Trace, opts ContestOptions) (ContestResult, error) {
	return contest.Run(cfgs, tr, opts)
}

// ContestRunContext is ContestRun with cooperative cancellation.
func ContestRunContext(ctx context.Context, cfgs []CoreConfig, tr *Trace, opts ContestOptions) (ContestResult, error) {
	return contest.RunContext(ctx, cfgs, tr, opts)
}

// CustomizeCore anneals a core configuration for the trace (the XpScalar
// stand-in used to derive application-customized cores).
// Cancelling ctx abandons the walk and returns the context error.
func CustomizeCore(ctx context.Context, tr *Trace, opts ExploreOptions) (ExploreResult, error) {
	return explore.Customize(ctx, tr, opts)
}

// TemperCore runs the parallel-tempering (replica-exchange) exploration:
// M chains on a temperature ladder with periodic state exchange.
// Cancelling ctx abandons the exploration and returns the context error.
func TemperCore(ctx context.Context, tr *Trace, opts TemperOptions) (ExploreResult, error) {
	return explore.Temper(ctx, tr, opts)
}

// OpenResultCache opens (creating if needed) a persistent result cache
// rooted at dir; an empty dir yields a memory-only cache.
func OpenResultCache(dir string) (*ResultCache, error) {
	return resultcache.Open(dir, resultcache.Options{})
}

// MigrateOptions configures the oracle-migration baseline (the sluggish
// alternative contesting is motivated against).
type MigrateOptions = migrate.Options

// MigrateResult is the outcome of an oracle-migration simulation.
type MigrateResult = migrate.Result

// MigrationSweep simulates oracle-policy thread migration between two cores
// at the given granularities, with realistic transfer/drain/cold-cache
// costs.
func MigrationSweep(a, b CoreConfig, tr *Trace, granularities []int, opts MigrateOptions) ([]MigrateResult, error) {
	return migrate.Sweep(a, b, tr, granularities, opts)
}

// EnergyEstimate is an event-based energy/power estimate of a run.
type EnergyEstimate = power.Estimate

// RunEnergy estimates the energy of a stand-alone run.
func RunEnergy(cfg CoreConfig, r RunResult) EnergyEstimate { return power.SingleRun(cfg, r) }

// ContestEnergy estimates the total energy of a contested run across all
// cores (contesting is redundant execution: expect roughly N times the
// pipeline energy).
func ContestEnergy(cfgs []CoreConfig, r ContestResult) EnergyEstimate {
	return power.ContestRun(cfgs, r)
}

// NewLab builds an experiment campaign.
func NewLab(cfg LabConfig) *Lab { return experiments.NewLab(cfg) }

// Experiments lists the experiment IDs in presentation order; run one with
// RunExperiment.
func Experiments() []string { return append([]string(nil), experiments.RegistryOrder...) }

// RunExperiment regenerates one paper table or figure. Cancelling ctx
// abandons the campaign's un-started leaves and returns the context error.
func RunExperiment(ctx context.Context, lab *Lab, id string) (*ExperimentTable, error) {
	exp, ok := experiments.Registry[id]
	if !ok {
		return nil, errUnknownExperiment(id)
	}
	return exp(ctx, lab)
}

type errUnknownExperiment string

func (e errUnknownExperiment) Error() string {
	return "archcontest: unknown experiment " + string(e)
}
