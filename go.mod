module archcontest

go 1.22
