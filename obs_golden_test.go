package archcontest

// Golden-equivalence tests for the observability layer: a run with a
// recorder attached must produce the bit-identical Result of the same run
// with no recorder — the recorder reads, never steers. The grids mirror
// golden_test.go (5 benches × 8 cores stand-alone, 6 option-variant pairs
// × 4 benches contested), so every engine behaviour the golden suite
// covers — high latency, both exception-handler styles, saturation,
// store-queue backpressure — is also exercised with recording on.

import (
	"reflect"
	"testing"

	"archcontest/internal/obs"
)

func TestRecorderDetachedEquivalenceSingleCore(t *testing.T) {
	benches := []string{"gcc", "mcf", "bzip", "crafty", "twolf"}
	cores := []string{"bzip", "crafty", "gap", "gcc", "gzip", "mcf", "twolf", "vpr"}
	for _, b := range benches {
		tr := MustGenerateTrace(b, goldenInsts)
		for _, cn := range cores {
			cfg := MustPaletteCore(cn)
			bare, err := Run(cfg, tr, RunOptions{LogRegions: true})
			if err != nil {
				t.Fatalf("%s on %s: %v", b, cn, err)
			}
			rec := obs.NewRecorder(obs.Options{})
			recorded, err := Run(cfg, tr, RunOptions{LogRegions: true, Checker: rec.CoreChecker(0)})
			if err != nil {
				t.Fatalf("%s on %s (recorded): %v", b, cn, err)
			}
			if !reflect.DeepEqual(bare, recorded) {
				t.Errorf("%s on %s: recorder changed the result\nbare:     %+v\nrecorded: %+v", b, cn, bare, recorded)
			}
			rec.FinishRun(recorded)
			if len(rec.Events()) == 0 {
				t.Errorf("%s on %s: recorder attached but captured nothing", b, cn)
			}
		}
	}
}

func TestRecorderDetachedEquivalenceContested(t *testing.T) {
	pairs := []struct {
		a, b string
		opts ContestOptions
	}{
		{"gcc", "mcf", ContestOptions{}},
		{"bzip", "crafty", ContestOptions{LatencyNs: 5}},
		{"twolf", "vpr", ContestOptions{ExceptionEvery: 512}},
		{"gzip", "perl", ContestOptions{MaxLag: 64}},
		{"gap", "vortex", ContestOptions{ExceptionEvery: 768, ExceptionKillRefork: true}},
		{"mcf", "parser", ContestOptions{StoreQueueCap: 8}},
	}
	benches := []string{"gcc", "mcf", "twolf", "gzip"}
	for _, p := range pairs {
		cfgs := []CoreConfig{MustPaletteCore(p.a), MustPaletteCore(p.b)}
		for _, b := range benches {
			tr := MustGenerateTrace(b, goldenInsts)
			bareOpts := p.opts
			bareOpts.RegionSize = 20
			bare, err := ContestRun(cfgs, tr, bareOpts)
			if err != nil {
				t.Fatalf("%s vs %s on %s: %v", p.a, p.b, b, err)
			}
			rec := obs.NewRecorder(obs.Options{})
			recOpts := p.opts
			recOpts.RegionSize = 20
			recOpts.Observer = rec
			recorded, err := ContestRun(cfgs, tr, recOpts)
			if err != nil {
				t.Fatalf("%s vs %s on %s (recorded): %v", p.a, p.b, b, err)
			}
			if !reflect.DeepEqual(bare, recorded) {
				t.Errorf("%s vs %s on %s: recorder changed the result\nbare:     %+v\nrecorded: %+v", p.a, p.b, b, bare, recorded)
			}
			rec.FinishContest(recorded)
			if rec.LeadChanges() != recorded.LeadChanges {
				t.Errorf("%s vs %s on %s: recorder saw %d lead changes, contest reports %d",
					p.a, p.b, b, rec.LeadChanges(), recorded.LeadChanges)
			}
		}
	}
}
